"""Fragment classifiers: SIMPLE (``LS``), ``LB`` and ECL (Section 6.1).

The grammars, verbatim from the paper:

* ``LS`` (Kulkarni et al.'s SIMPLE)::

      S ::= V1 ≠ V2 | S ∧ S | true | false

* ``LB`` — boolean combinations of atoms whose variables all come from one
  side::

      B ::= P_{V1} | P_{V2} | ¬B | B ∧ B | B ∨ B | true | false

* ``ECL``::

      X ::= S | B | X ∧ X | X ∨ B

The ``X ∨ B`` production is order-insensitive here (``B ∨ X`` is accepted
too); the paper's formulas are written both ways and disjunction commutes.

The classifiers drive two things: :func:`require_ecl` gates the translator
(Theorem 6.6 only holds for ECL), and the distinction between LS atoms and
LB atoms *within* an ECL formula is what the translation keys on.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..core.errors import FragmentError
from .formulas import (And, Atom, Const, FalseF, Formula, Not, Or, Side,
                       TrueF, Var, atoms_of)

__all__ = [
    "is_ls_atom", "is_lb_atom", "atom_side",
    "is_simple", "is_lb", "is_ecl", "require_ecl",
    "canonical_lb_atom", "lb_atoms", "ls_atoms",
]


def atom_side(atom: Atom) -> Optional[Side]:
    """The unique side referenced by an atom's variables, if any.

    Returns ``None`` when the atom references no variables (ground) or
    variables of both sides (in which case it cannot be an LB atom).
    Normalized (side-less) variables count as no side.
    """
    sides: FrozenSet[Side] = frozenset(
        arg.side for arg in atom.args
        if isinstance(arg, Var) and arg.side is not None)
    if len(sides) == 1:
        return next(iter(sides))
    return None


def _is_ground(atom: Atom) -> bool:
    return all(isinstance(arg, Const) for arg in atom.args)


def is_ls_atom(atom: Atom) -> bool:
    """``V1 ≠ V2``: a disequality between a side-1 and a side-2 variable."""
    if atom.pred != "ne" or len(atom.args) != 2:
        return False
    left, right = atom.args
    if not (isinstance(left, Var) and isinstance(right, Var)):
        return False
    return {left.side, right.side} == {Side.FIRST, Side.SECOND}


def is_lb_atom(atom: Atom) -> bool:
    """An atom whose variables are confined to a single side.

    Ground atoms (no variables at all) qualify: they are constants, which
    ``LB`` includes via ``true``/``false`` once evaluated.
    """
    mixed_sides = frozenset(
        arg.side for arg in atom.args if isinstance(arg, Var))
    return len(mixed_sides) <= 1


def is_simple(formula: Formula) -> bool:
    """Membership in ``LS`` (the SIMPLE fragment, Definition 6.1)."""
    if isinstance(formula, (TrueF, FalseF)):
        return True
    if isinstance(formula, Atom):
        return is_ls_atom(formula)
    if isinstance(formula, And):
        return is_simple(formula.left) and is_simple(formula.right)
    return False


def is_lb(formula: Formula) -> bool:
    """Membership in ``LB`` (Definition 6.2).

    Note the whole formula may mix sides across *different* atoms — only
    individual atoms are single-sided (the paper's ``x < y ∧ 0 < z``
    example).
    """
    if isinstance(formula, (TrueF, FalseF)):
        return True
    if isinstance(formula, Atom):
        return is_lb_atom(formula)
    if isinstance(formula, Not):
        return is_lb(formula.operand)
    if isinstance(formula, (And, Or)):
        return is_lb(formula.left) and is_lb(formula.right)
    return False


def is_ecl(formula: Formula) -> bool:
    """Membership in ECL (Definition 6.3): ``X ::= S | B | X ∧ X | X ∨ B``."""
    if is_simple(formula) or is_lb(formula):
        return True
    if isinstance(formula, And):
        return is_ecl(formula.left) and is_ecl(formula.right)
    if isinstance(formula, Or):
        return ((is_ecl(formula.left) and is_lb(formula.right))
                or (is_lb(formula.left) and is_ecl(formula.right)))
    return False


def require_ecl(formula: Formula, context: str = "") -> None:
    """Raise :class:`~repro.core.errors.FragmentError` unless ECL."""
    if not is_ecl(formula):
        where = f" in {context}" if context else ""
        raise FragmentError(
            f"formula {formula} is not in the ECL fragment{where}: "
            f"atoms other than cross-side disequalities must reference "
            f"variables of a single side, and disjunctions must have an "
            f"LB disjunct")


def canonical_lb_atom(atom: Atom) -> Tuple[Atom, bool]:
    """Canonicalize an LB atom up to exact complement.

    ``x ≠ y`` (single-sided) is the negation of the atom ``x = y``; keeping
    both as independent atoms would double the β space and, worse, admit
    semantically impossible β vectors.  The paper's worked example does the
    same: ``v1 ≠ nil`` contributes the atom ``v = nil`` to ``B(Φ)``.

    Returns ``(canonical_atom, positive)`` where ``positive`` is false when
    the original atom is the complement of the canonical one.  Only
    ``ne → ¬eq`` is rewritten: the order predicates are *not* exact
    complements under this library's nil-guarded semantics (``lt`` and
    ``ge`` are both false when an operand is ``nil``).
    """
    if atom.pred == "ne":
        return Atom("eq", atom.args), False
    return atom, True


def lb_atoms(formula: Formula) -> tuple:
    """The canonical LB atoms of an ECL formula, in pre-order, deduplicated.

    An atom that is an LS atom (cross-side ``≠``) is *not* an LB atom even
    though structurally both checks could pass for degenerate cases; LS
    classification wins, matching the translation which keeps LS atoms
    symbolic and substitutes only LB atoms with β values.
    """
    seen = []
    for atom in atoms_of(formula):
        if is_ls_atom(atom):
            continue
        if not is_lb_atom(atom):
            raise FragmentError(
                f"atom {atom} mixes sides and is not a cross-side "
                f"disequality; the formula is outside ECL")
        canonical, _ = canonical_lb_atom(atom)
        if canonical not in seen:
            seen.append(canonical)
    return tuple(seen)


def ls_atoms(formula: Formula) -> tuple:
    """The LS atoms (cross-side disequalities), deduplicated, in pre-order."""
    seen = []
    for atom in atoms_of(formula):
        if is_ls_atom(atom) and atom not in seen:
            seen.append(atom)
    return tuple(seen)
