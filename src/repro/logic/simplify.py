"""Boolean simplification and the β-substitution of Section 6.2.

Two operations are provided:

* :func:`simplify` — constant folding (``X ∧ true → X`` etc.).
* :func:`substitute_beta` — build ``ϕ[β1; β2]``: replace every LB atom by
  its truth value under the β vector of its side.  By Lemma 6.4, the result
  simplifies to an ``LS`` formula; :func:`to_ls` extracts it as either a
  constant or the set of ``xi ≠ yj`` conjuncts, which is exactly the shape
  the conflict-relation construction consumes.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Set, Tuple, Union

from ..core.errors import TranslationError
from .formulas import (FALSE, TRUE, And, Atom, FalseF, Formula, Not, Or,
                       Side, TrueF, Var, normalize_sides)
from .fragments import canonical_lb_atom, is_ls_atom

__all__ = ["simplify", "substitute_beta", "to_ls", "LsResult"]


def simplify(formula: Formula) -> Formula:
    """Fold constants bottom-up; idempotent."""
    if isinstance(formula, Not):
        inner = simplify(formula.operand)
        if isinstance(inner, TrueF):
            return FALSE
        if isinstance(inner, FalseF):
            return TRUE
        if isinstance(inner, Not):
            return inner.operand
        return Not(inner)
    if isinstance(formula, And):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(left, FalseF) or isinstance(right, FalseF):
            return FALSE
        if isinstance(left, TrueF):
            return right
        if isinstance(right, TrueF):
            return left
        return And(left, right)
    if isinstance(formula, Or):
        left = simplify(formula.left)
        right = simplify(formula.right)
        if isinstance(left, TrueF) or isinstance(right, TrueF):
            return TRUE
        if isinstance(left, FalseF):
            return right
        if isinstance(right, FalseF):
            return left
        return Or(left, right)
    return formula


Beta = Dict[Formula, bool]
"""A β vector: normalized LB atom -> truth value."""


def substitute_beta(formula: Formula, beta1: Beta, beta2: Beta) -> Formula:
    """``ϕ[β1; β2]`` — replace LB atoms by their β truth values.

    Each non-LS atom is looked up in the β vector of its side, keyed by its
    *normalized* form (sides erased), per the paper's normalization of
    ``B(Φ)``.  LS atoms are left symbolic.  The result is simplified, so by
    Lemma 6.4 it is an ``LS`` formula (or a constant).
    """
    def replace(atom: Atom) -> Formula:
        if is_ls_atom(atom):
            return atom
        canonical, positive = canonical_lb_atom(atom)
        sides = {arg.side for arg in canonical.args
                 if isinstance(arg, Var) and arg.side is not None}
        key = normalize_sides(canonical)
        if sides == {Side.FIRST}:
            beta = beta1
        elif sides == {Side.SECOND}:
            beta = beta2
        elif not sides:
            # Ground atom: evaluate directly.
            from .formulas import evaluate
            value = evaluate(canonical, _no_vars)
            if not positive:
                value = not value
            return TRUE if value else FALSE
        else:
            raise TranslationError(
                f"atom {atom} mixes variable sides; not an ECL formula")
        try:
            value = beta[key]
        except KeyError:
            raise TranslationError(
                f"β vector for side {sides} lacks atom {key} "
                f"(available: {sorted(map(str, beta))})") from None
        if not positive:
            value = not value
        return TRUE if value else FALSE

    from .formulas import map_atoms
    return simplify(map_atoms(formula, replace))


def _no_vars(var: Var):
    raise TranslationError(f"unexpected variable {var} in ground atom")


LsResult = Union[bool, FrozenSet[Tuple[str, str]]]
"""``to_ls`` output: True, False, or the conjunct set {(x_name, y_name)}."""


def to_ls(formula: Formula) -> LsResult:
    """Decompose a (simplified) LS formula into its conjuncts.

    Returns ``True`` for tautology, ``False`` for contradiction, or a frozen
    set of ``(x, y)`` variable-name pairs, one per ``x1 ≠ y2`` conjunct.
    Raises :class:`~repro.core.errors.TranslationError` on anything outside
    LS — if that happens after β substitution of an ECL formula, it is a
    translator bug (Lemma 6.4 guarantees the LS shape).
    """
    formula = simplify(formula)
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    conjuncts: Set[Tuple[str, str]] = set()
    _collect_conjuncts(formula, conjuncts)
    return frozenset(conjuncts)


def _collect_conjuncts(formula: Formula,
                       out: Set[Tuple[str, str]]) -> None:
    if isinstance(formula, And):
        _collect_conjuncts(formula.left, out)
        _collect_conjuncts(formula.right, out)
        return
    if isinstance(formula, Atom) and is_ls_atom(formula):
        left, right = formula.args
        if left.side is Side.FIRST:
            out.add((left.name, right.name))
        else:
            out.add((right.name, left.name))
        return
    raise TranslationError(
        f"{formula} is not an LS formula (expected a conjunction of "
        f"cross-side disequalities)")
