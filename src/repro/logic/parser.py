"""Textual syntax for commutativity formulas.

Specifications read much better as text than as AST constructors; the paper
itself writes ``k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2)``.  The grammar::

    formula  ::= or
    or       ::= and (("or" | "|" | "||" | "∨") and)*
    and      ::= unary (("and" | "&" | "&&" | "∧") unary)*
    unary    ::= ("not" | "!" | "¬") unary | "(" formula ")" | atom
               | "true" | "false"
    atom     ::= term relop term
    relop    ::= "!=" | "≠" | "==" | "=" | "<=" | "≤" | "<" | ">=" | "≥" | ">"
    term     ::= IDENT | NUMBER | STRING | "nil" | "none"

Variable naming convention: an identifier ending in ``1`` or ``2`` denotes a
variable of that side with the digit stripped (``k1`` → side-1 variable
``k``), matching the paper's notation.  Identifiers without a trailing side
digit are rejected unless the caller supplies a ``resolve`` hook (used by
the spec layer for single-sided helper predicates).
"""

from __future__ import annotations

import re
from typing import Callable, List, NamedTuple, Optional

from ..core.errors import ParseError
from ..core.events import NIL
from .formulas import (FALSE, TRUE, And, Atom, Const, Formula, Not, Or, Side,
                       Term, Var)

__all__ = ["parse_formula", "default_resolver"]

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+(\.\d+)?)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<op><=|>=|==|!=|≤|≥|≠|=|<|>|\|\||&&|\||&|∨|∧|¬|!|\(|\))
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
""", re.VERBOSE)


class _Token(NamedTuple):
    kind: str
    text: str
    pos: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError("unexpected character", text, pos)
        kind = match.lastgroup
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


def default_resolver(name: str) -> Term:
    """Map an identifier to a term using the trailing-digit convention."""
    lowered = name.lower()
    if lowered == "nil":
        return Const(NIL)
    if lowered == "none":
        return Const(None)
    if name.endswith("1") and len(name) > 1:
        return Var(name[:-1], Side.FIRST)
    if name.endswith("2") and len(name) > 1:
        return Var(name[:-1], Side.SECOND)
    raise ParseError(
        f"identifier {name!r} has no side suffix (expected e.g. {name}1 "
        f"or {name}2)")


_RELOPS = {
    "!=": "ne", "≠": "ne",
    "==": "eq", "=": "eq",
    "<": "lt", "<=": "le", "≤": "le",
    ">": "gt", ">=": "ge", "≥": "ge",
}

_OR_OPS = {"or", "|", "||", "∨"}
_AND_OPS = {"and", "&", "&&", "∧"}
_NOT_OPS = {"not", "!", "¬"}


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str, resolve: Callable[[str], Term]):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.resolve = resolve

    def peek(self) -> Optional[_Token]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula", self.text,
                             len(self.text))
        self.index += 1
        return token

    def expect_op(self, op: str) -> None:
        token = self.advance()
        if token.kind != "op" or token.text != op:
            raise ParseError(f"expected {op!r}, found {token.text!r}",
                             self.text, token.pos)

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Formula:
        formula = self.or_expr()
        trailing = self.peek()
        if trailing is not None:
            raise ParseError(f"unexpected trailing input {trailing.text!r}",
                             self.text, trailing.pos)
        return formula

    def or_expr(self) -> Formula:
        left = self.and_expr()
        while self._match_word(_OR_OPS):
            left = Or(left, self.and_expr())
        return left

    def and_expr(self) -> Formula:
        left = self.unary()
        while self._match_word(_AND_OPS):
            left = And(left, self.unary())
        return left

    def _match_word(self, words) -> bool:
        token = self.peek()
        if token is not None and token.text.lower() in words:
            self.index += 1
            return True
        return False

    def unary(self) -> Formula:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of formula", self.text,
                             len(self.text))
        if token.text.lower() in _NOT_OPS:
            self.index += 1
            return Not(self.unary())
        if token.kind == "op" and token.text == "(":
            self.index += 1
            inner = self.or_expr()
            self.expect_op(")")
            return inner
        if token.kind == "ident" and token.text.lower() == "true":
            self.index += 1
            return TRUE
        if token.kind == "ident" and token.text.lower() == "false":
            self.index += 1
            return FALSE
        return self.atom()

    def atom(self) -> Formula:
        left = self.term()
        op_token = self.advance()
        if op_token.kind != "op" or op_token.text not in _RELOPS:
            raise ParseError(
                f"expected a relational operator, found {op_token.text!r}",
                self.text, op_token.pos)
        right = self.term()
        return Atom(_RELOPS[op_token.text], (left, right))

    def term(self) -> Term:
        token = self.advance()
        if token.kind == "number":
            text = token.text
            return Const(float(text) if "." in text else int(text))
        if token.kind == "string":
            return Const(token.text[1:-1])
        if token.kind == "ident":
            try:
                return self.resolve(token.text)
            except ParseError as exc:
                raise ParseError(str(exc), self.text, token.pos) from None
        raise ParseError(f"expected a term, found {token.text!r}",
                         self.text, token.pos)


def parse_formula(text: str,
                  resolve: Callable[[str], Term] = default_resolver
                  ) -> Formula:
    """Parse a commutativity formula from its textual form.

    >>> str(parse_formula("k1 != k2 | (v1 == p1 & v2 == p2)"))
    '(k1 ≠ k2 ∨ (v1 = p1 ∧ v2 = p2))'
    """
    return _Parser(text, resolve).parse()
