"""Optimization of translated representations (Appendix A.3).

The appendix works four simplifications on the raw dictionary translation:
*consolidation* (merge atoms always used together), *dropping* (forget β
components that do not influence conflicts), *cleanup* (remove access points
that conflict with nothing) and *replacement* (substitute congruent access
points for one another — ``o:r:v`` for ``o.get:∅:1:v``).

All four are instances of two semantic rewrites on the finite schema table,
and that is what we implement:

* :func:`remove_conflict_free` — **cleanup**: a schema with an empty conflict
  neighborhood can never satisfy phase 1 of Algorithm 1, so its points need
  not exist (Definition 4.5 equivalence is preserved because such points
  contribute nothing to ``(ηo(a) × ηo(b)) ∩ Co``).

* :func:`merge_congruent` — **consolidation + dropping + replacement**: two
  schemas of the same valuedness whose conflict neighborhoods coincide are
  congruent (the appendix's "for any third point pt3, (pt1,pt3) ∈ Co iff
  (pt2,pt3) ∈ Co"); each congruence class keeps a single representative.
  Dropping a β atom that never influences conflicts is precisely merging the
  pair of schemas that differ only in that atom's value; consolidating
  ``v = nil``/``p = nil`` into ``v = nil ⇔ p = nil`` merges the two β
  assignments with equal biconditional value; and replacing ``o.get:∅:1:v``
  by ``o:r:v`` merges schemas across methods.

Merging is partition refinement run to a fixed point: collapsing one class
shrinks neighborhoods, which can reveal new congruences.

A note on self-conflicts: if ``N(s1) = N(s2)`` then ``s1 ∈ N(s1) ⟺
s2 ∈ N(s1) = N(s2)`` (conflict symmetry), so the members of a class either
all pairwise- and self-conflict or none do — merging cannot manufacture or
lose a self-conflict.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .translate import RawSchema, TranslationResult

__all__ = ["remove_conflict_free", "merge_congruent", "optimize_translation"]


def remove_conflict_free(result: TranslationResult) -> int:
    """Delete schemas that conflict with nothing; returns how many."""
    doomed = [schema for schema in result.schemas
              if not result.conflicts.get(schema)]
    for schema in doomed:
        result.delete(schema)
    return len(doomed)


def merge_congruent(result: TranslationResult) -> int:
    """Merge congruent schemas until fixed point; returns schemas removed."""
    removed = 0
    while True:
        groups: Dict[Tuple[bool, FrozenSet[RawSchema]], List[RawSchema]] = {}
        for schema in result.schemas:
            signature = (schema.carries_value, result.neighborhood(schema))
            groups.setdefault(signature, []).append(schema)
        mergeable = [members for members in groups.values()
                     if len(members) > 1]
        if not mergeable:
            return removed
        for members in mergeable:
            # A previous merge in this round may have consumed a member;
            # re-filter against the live schema set.
            live = [m for m in members if m in result.schemas]
            if len(live) > 1:
                result.merge(live)
                removed += len(live) - 1


def optimize_translation(result: TranslationResult) -> TranslationResult:
    """Run cleanup and congruence merging to a joint fixed point.

    Cleanup first (it usually removes the long tail of never-conflicting
    slot points, making the merge rounds cheap), then alternate: merging
    never empties a non-empty neighborhood, but it can leave two schemas
    pointing at each other only through deleted peers in later extensions,
    so we simply iterate both passes until neither changes anything.
    """
    while True:
        changed = remove_conflict_free(result)
        changed += merge_congruent(result)
        if not changed:
            return result
