"""Specification reports: render a spec and its translation, Fig. 6/7 style.

The paper presents its dictionary twice — once as logical formulas (Fig. 6)
and once as the access point representation (Fig. 7).  :func:`spec_report`
produces that pair for *any* ECL specification: the method signatures, the
pairwise formulas, ``B(Φ, m)`` per method, the optimized schema table and
the conflict relation — exactly what a user writing a new specification
wants to review before trusting its races.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.access_points import SchemaRepresentation
from .spec import CommutativitySpec
from .translate import (TranslatedRepresentation, build_raw_translation,
                        translate)

__all__ = ["spec_report"]


def _formula_section(spec: CommutativitySpec) -> List[str]:
    lines = [f"specification: {spec.kind}", "", "methods:"]
    for name in sorted(spec.methods):
        lines.append(f"  {spec.signature(name)}")
    lines += ["", "commutativity formulas (Fig. 6 style):"]
    for m1, m2, formula in spec.pairs():
        lines.append(f"  ϕ[{m1}, {m2}] := {formula}")
    return lines


def _atoms_section(spec: CommutativitySpec) -> List[str]:
    raw = build_raw_translation(spec)
    lines = ["", "B(Φ, m) — the LB atoms each method's β tracks:"]
    for method in sorted(spec.methods):
        atoms = raw.atoms_by_method[method]
        if atoms:
            rendered = "{" + ", ".join(str(atom) for atom in atoms) + "}"
        else:
            rendered = "∅"
        lines.append(f"  B(Φ, {method}) = {rendered}")
    lines.append(f"  raw schemas: {raw.schema_count()}")
    return lines


def _representation_section(rep: TranslatedRepresentation) -> List[str]:
    lines = ["", "optimized access point representation (Fig. 7 style):"]
    result = rep.translation
    for schema in sorted(result.schemas, key=str):
        kind = "value" if schema.carries_value else "plain"
        peers = sorted(result.conflicts.get(schema, ()), key=str)
        conflict_list = ", ".join(str(peer) for peer in peers) or "nothing"
        lines.append(f"  {schema}  [{kind}]  conflicts: {conflict_list}")
    lines.append(f"  schemas: {result.schema_count()}, "
                 f"max conflict degree: {rep.max_conflict_degree()} "
                 f"(Theorem 6.6 bound)")
    return lines


def spec_report(spec: CommutativitySpec,
                representation: Optional[TranslatedRepresentation] = None
                ) -> str:
    """A human-readable review of a specification and its translation.

    ``representation`` defaults to ``translate(spec)`` (so the spec must be
    complete ECL); pass one to avoid re-translating.
    """
    if representation is None:
        representation = translate(spec)
    lines = _formula_section(spec)
    lines += _atoms_section(spec)
    lines += _representation_section(representation)
    return "\n".join(lines)
