"""Formula AST for commutativity specifications (Section 4.1 / 6.1).

A specification formula ``ϕ_{m1,m2}(~x1; ~x2)`` relates the arguments and
return values of two method invocations.  Variables carry a *side*: side 1
variables bind the first action's values, side 2 the second's.  The ECL
fragment (Definition 6.3) constrains how sides may mix:

* ``LS`` atoms are cross-side disequalities ``x ≠ y`` (x on side 1, y on 2);
* ``LB`` atoms are arbitrary predicates over variables of a *single* side.

All nodes are frozen dataclasses — formulas are values: hashable, usable as
dictionary keys (the translator keys β vectors by normalized atoms), and
safely shared.

Terms
-----
``Var(name, side)`` and ``Const(value)``.  A ``Var`` with ``side=None`` is
*normalized* — the translator erases sides when collecting ``B(Φ)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, Optional, Tuple, Union

from ..core.errors import SpecificationError
from ..core.events import NIL

__all__ = [
    "Side", "Var", "Const", "Term",
    "Formula", "TrueF", "FalseF", "Atom", "Not", "And", "Or",
    "TRUE", "FALSE",
    "PREDICATES", "register_predicate",
    "var1", "var2", "const", "eq", "ne", "lt", "le", "gt", "ge",
    "conj", "disj", "negate",
    "evaluate", "atoms_of", "vars_of", "sides_of", "swap_sides",
    "normalize_sides", "subformulas", "map_atoms",
]


class Side(enum.IntEnum):
    """Which action a variable refers to (V1 or V2 in the paper)."""

    FIRST = 1
    SECOND = 2

    def other(self) -> "Side":
        return Side.SECOND if self is Side.FIRST else Side.FIRST


@dataclass(frozen=True)
class Var:
    """A specification variable; ``side=None`` means normalized."""

    name: str
    side: Optional[Side] = None

    def __str__(self) -> str:
        return self.name if self.side is None else f"{self.name}{int(self.side)}"


@dataclass(frozen=True)
class Const:
    """A literal constant (number, string, ``NIL``, ``None``, ...)."""

    value: Any

    def __str__(self) -> str:
        return repr(self.value) if self.value is not NIL else "nil"


Term = Union[Var, Const]


# -- predicate registry ---------------------------------------------------------
#
# LB atoms may use any interpreted predicate; ECL's restriction is about
# which *variables* an atom mentions, not which relation it applies.

PREDICATES: Dict[str, Tuple[int, Callable[..., bool]]] = {}


def register_predicate(name: str, arity: int,
                       fn: Callable[..., bool]) -> None:
    """Add an interpreted predicate usable in Atom nodes.

    Predicates must be total on the values they will see at analysis time;
    exceptions propagate to the caller of :func:`evaluate`.
    """
    if name in PREDICATES:
        raise SpecificationError(f"predicate {name!r} already registered")
    PREDICATES[name] = (arity, fn)


def _guarded(op: Callable[[Any, Any], bool]) -> Callable[[Any, Any], bool]:
    """Make order comparisons total: incomparable operands (``nil``, or
    mixed types like ``"a" < 1``) compare false rather than raising.

    Note the consequence: ``lt`` and ``ge`` are then *not* complements on
    incomparable values, which is why atom canonicalization rewrites only
    ``ne`` (an exact complement of ``eq``) and leaves order atoms alone.
    """
    def check(a: Any, b: Any) -> bool:
        if a is NIL or b is NIL:
            return False
        try:
            return op(a, b)
        except TypeError:
            return False
    return check


register_predicate("eq", 2, lambda a, b: a == b)
register_predicate("ne", 2, lambda a, b: a != b)
register_predicate("lt", 2, _guarded(lambda a, b: a < b))
register_predicate("le", 2, _guarded(lambda a, b: a <= b))
register_predicate("gt", 2, _guarded(lambda a, b: a > b))
register_predicate("ge", 2, _guarded(lambda a, b: a >= b))


# -- AST nodes -------------------------------------------------------------------

class Formula:
    """Base class of formula nodes.  Instances are immutable values."""

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "false"


TRUE = TrueF()
FALSE = FalseF()


@dataclass(frozen=True)
class Atom(Formula):
    """An interpreted predicate applied to terms, e.g. ``ne(k1, k2)``."""

    pred: str
    args: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if self.pred not in PREDICATES:
            raise SpecificationError(f"unknown predicate {self.pred!r}")
        arity, _ = PREDICATES[self.pred]
        if len(self.args) != arity:
            raise SpecificationError(
                f"predicate {self.pred!r} expects {arity} arguments, "
                f"got {len(self.args)}")

    _INFIX = {"eq": "=", "ne": "≠", "lt": "<", "le": "≤", "gt": ">", "ge": "≥"}

    def __str__(self) -> str:
        if self.pred in self._INFIX and len(self.args) == 2:
            return f"{self.args[0]} {self._INFIX[self.pred]} {self.args[1]}"
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.pred}({inner})"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"¬({self.operand})"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


# -- construction helpers --------------------------------------------------------

def var1(name: str) -> Var:
    return Var(name, Side.FIRST)


def var2(name: str) -> Var:
    return Var(name, Side.SECOND)


def const(value: Any) -> Const:
    return Const(value)


def _term(x: Any) -> Term:
    return x if isinstance(x, (Var, Const)) else Const(x)


def eq(a: Any, b: Any) -> Atom:
    return Atom("eq", (_term(a), _term(b)))


def ne(a: Any, b: Any) -> Atom:
    return Atom("ne", (_term(a), _term(b)))


def lt(a: Any, b: Any) -> Atom:
    return Atom("lt", (_term(a), _term(b)))


def le(a: Any, b: Any) -> Atom:
    return Atom("le", (_term(a), _term(b)))


def gt(a: Any, b: Any) -> Atom:
    return Atom("gt", (_term(a), _term(b)))


def ge(a: Any, b: Any) -> Atom:
    return Atom("ge", (_term(a), _term(b)))


def conj(*parts: Formula) -> Formula:
    """Right-fold conjunction; ``conj()`` is ``true``."""
    if not parts:
        return TRUE
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = And(part, out)
    return out


def disj(*parts: Formula) -> Formula:
    """Right-fold disjunction; ``disj()`` is ``false``."""
    if not parts:
        return FALSE
    out = parts[-1]
    for part in reversed(parts[:-1]):
        out = Or(part, out)
    return out


def negate(formula: Formula) -> Formula:
    return Not(formula)


# -- traversal and evaluation ------------------------------------------------------

def subformulas(formula: Formula) -> Iterator[Formula]:
    """Pre-order traversal of all subformulas (including the root)."""
    yield formula
    if isinstance(formula, Not):
        yield from subformulas(formula.operand)
    elif isinstance(formula, (And, Or)):
        yield from subformulas(formula.left)
        yield from subformulas(formula.right)


def atoms_of(formula: Formula) -> Iterator[Atom]:
    """All atomic subformulas, in pre-order."""
    for sub in subformulas(formula):
        if isinstance(sub, Atom):
            yield sub


def vars_of(formula: Formula) -> FrozenSet[Var]:
    """The free variables of a formula (all variables are free)."""
    out = set()
    for atom in atoms_of(formula):
        for arg in atom.args:
            if isinstance(arg, Var):
                out.add(arg)
    return frozenset(out)


def sides_of(formula: Formula) -> FrozenSet[Optional[Side]]:
    """The set of sides referenced by the formula's variables."""
    return frozenset(v.side for v in vars_of(formula))


def evaluate(formula: Formula, lookup: Callable[[Var], Any]) -> bool:
    """Evaluate under a variable assignment given by ``lookup``."""
    if isinstance(formula, TrueF):
        return True
    if isinstance(formula, FalseF):
        return False
    if isinstance(formula, Atom):
        _, fn = PREDICATES[formula.pred]
        values = [arg.value if isinstance(arg, Const) else lookup(arg)
                  for arg in formula.args]
        return bool(fn(*values))
    if isinstance(formula, Not):
        return not evaluate(formula.operand, lookup)
    if isinstance(formula, And):
        return evaluate(formula.left, lookup) and evaluate(formula.right, lookup)
    if isinstance(formula, Or):
        return evaluate(formula.left, lookup) or evaluate(formula.right, lookup)
    raise SpecificationError(f"cannot evaluate {formula!r}")


def map_atoms(formula: Formula,
              fn: Callable[[Atom], Formula]) -> Formula:
    """Rebuild the formula with every atom replaced by ``fn(atom)``."""
    if isinstance(formula, Atom):
        return fn(formula)
    if isinstance(formula, Not):
        return Not(map_atoms(formula.operand, fn))
    if isinstance(formula, And):
        return And(map_atoms(formula.left, fn), map_atoms(formula.right, fn))
    if isinstance(formula, Or):
        return Or(map_atoms(formula.left, fn), map_atoms(formula.right, fn))
    return formula


def _map_terms(atom: Atom, fn: Callable[[Term], Term]) -> Atom:
    return Atom(atom.pred, tuple(fn(arg) for arg in atom.args))


def swap_sides(formula: Formula) -> Formula:
    """Exchange side-1 and side-2 variables (``ϕ(~x2; ~x1)``)."""
    def flip(term: Term) -> Term:
        if isinstance(term, Var) and term.side is not None:
            return Var(term.name, term.side.other())
        return term
    return map_atoms(formula, lambda atom: _map_terms(atom, flip))


def normalize_sides(formula: Formula) -> Formula:
    """Erase side annotations (the translator's atom normalization).

    ``v1 = p1`` and ``v2 = p2`` both normalize to ``v = p``, which is how
    the paper's ``B(Φ)`` identifies them (Section 6.2).
    """
    def erase(term: Term) -> Term:
        if isinstance(term, Var):
            return Var(term.name, None)
        return term
    return map_atoms(formula, lambda atom: _map_terms(atom, erase))
