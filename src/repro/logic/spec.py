"""Logical commutativity specifications (Definition 4.1).

A :class:`CommutativitySpec` bundles, for one object kind:

* the method signatures (argument and return-value names), and
* a formula ``ϕ_{m1,m2}(~x1; ~x2)`` for each unordered method pair.

Formulas may be given as text (parsed with the trailing-digit side
convention: ``k1``/``k2`` are the two actions' ``k``) or as pre-built
:class:`~repro.logic.formulas.Formula` values.

The spec answers the core question of Section 4.1 — :meth:`commutes`
evaluates ``ϕ(a, b)`` on two concrete actions — and feeds the ECL
translator (:mod:`repro.logic.translate`).  Self-pair formulas are checked
for symmetry (required by Definition 4.1) by randomized evaluation.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from ..core.errors import SpecificationError
from ..core.events import NIL, Action
from .formulas import (FALSE, TRUE, Formula, Side, Var, evaluate,
                       swap_sides, vars_of)
from .fragments import is_ecl
from .parser import parse_formula

__all__ = ["MethodSig", "CommutativitySpec"]


@dataclass(frozen=True)
class MethodSig:
    """A method's argument and return-value names.

    ``put(k, v)/p`` is ``MethodSig("put", ("k", "v"), ("p",))``.  The
    concatenation ``params + returns`` gives the value vector ``w1..wn`` the
    translation numbers access-point slots by.
    """

    name: str
    params: Tuple[str, ...] = ()
    returns: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = self.params + self.returns
        if len(set(names)) != len(names):
            raise SpecificationError(
                f"method {self.name}: duplicate value names in {names}")

    @property
    def value_names(self) -> Tuple[str, ...]:
        return self.params + self.returns

    @property
    def arity(self) -> int:
        return len(self.value_names)

    def value_index(self, name: str) -> int:
        """Position of a value name in ``w1..wn`` (0-based)."""
        try:
            return self.value_names.index(name)
        except ValueError:
            raise SpecificationError(
                f"method {self.name} has no value named {name!r} "
                f"(values: {self.value_names})") from None

    def bind(self, action: Action) -> Dict[str, Any]:
        """Map value names to the action's concrete values."""
        values = action.values
        if len(values) != self.arity:
            raise SpecificationError(
                f"action {action} does not match signature "
                f"{self.name}({', '.join(self.params)})/"
                f"{', '.join(self.returns)}")
        return dict(zip(self.value_names, values))

    def __str__(self) -> str:
        params = ", ".join(self.params)
        rets = ", ".join(self.returns)
        return f"{self.name}({params})/{rets or '()'}"


class CommutativitySpec:
    """A logical commutativity specification Φ for one object kind.

    Example (the paper's Fig. 6 dictionary)::

        spec = CommutativitySpec("dictionary")
        spec.method("put", params=("k", "v"), returns=("p",))
        spec.method("get", params=("k",), returns=("v",))
        spec.method("size", returns=("r",))
        spec.pair("put", "put", "k1 != k2 | (v1 == p1 & v2 == p2)")
        spec.pair("put", "get", "k1 != k2 | v1 == p1")
        spec.pair("put", "size",
                  "(v1 == nil & p1 == nil) | (v1 != nil & p1 != nil)")
        spec.default_true()   # remaining pairs commute unconditionally

    Formulas are stored oriented: side-1 variables refer to the *first*
    method of the pair as given.  Lookup in the opposite orientation swaps
    sides automatically.
    """

    def __init__(self, kind: str):
        self.kind = kind
        self._methods: Dict[str, MethodSig] = {}
        self._formulas: Dict[Tuple[str, str], Formula] = {}

    # -- construction ------------------------------------------------------

    def method(self, name: str, params: Sequence[str] = (),
               returns: Sequence[str] = ()) -> "CommutativitySpec":
        """Declare a method signature (chainable)."""
        if name in self._methods:
            raise SpecificationError(f"method {name!r} declared twice")
        self._methods[name] = MethodSig(name, tuple(params), tuple(returns))
        return self

    def pair(self, m1: str, m2: str,
             formula: "Formula | str") -> "CommutativitySpec":
        """Set ``ϕ_{m1,m2}``; text is parsed with the side-suffix convention."""
        sig1, sig2 = self._sig(m1), self._sig(m2)
        if isinstance(formula, str):
            formula = parse_formula(formula)
        self._check_vars(formula, sig1, sig2)
        if m1 == m2:
            self._check_symmetry(m1, formula)
        if (m1, m2) in self._formulas or (m2, m1) in self._formulas:
            raise SpecificationError(
                f"pair ({m1}, {m2}) specified twice for {self.kind}")
        self._formulas[(m1, m2)] = formula
        return self

    def default_true(self) -> "CommutativitySpec":
        """Declare all unspecified pairs as unconditionally commuting."""
        return self._fill_default(TRUE)

    def default_false(self) -> "CommutativitySpec":
        """Declare all unspecified pairs as never commuting (conservative)."""
        return self._fill_default(FALSE)

    def _fill_default(self, formula: Formula) -> "CommutativitySpec":
        for m1, m2 in itertools.combinations_with_replacement(
                sorted(self._methods), 2):
            if (m1, m2) not in self._formulas and (m2, m1) not in self._formulas:
                self._formulas[(m1, m2)] = formula
        return self

    # -- validation ----------------------------------------------------------

    def _sig(self, name: str) -> MethodSig:
        try:
            return self._methods[name]
        except KeyError:
            raise SpecificationError(
                f"{self.kind} has no method {name!r} "
                f"(declared: {sorted(self._methods)})") from None

    def _check_vars(self, formula: Formula, sig1: MethodSig,
                    sig2: MethodSig) -> None:
        for var in vars_of(formula):
            if var.side is Side.FIRST:
                sig = sig1
            elif var.side is Side.SECOND:
                sig = sig2
            else:
                raise SpecificationError(
                    f"variable {var} in ϕ_{{{sig1.name},{sig2.name}}} has "
                    f"no side annotation")
            if var.name not in sig.value_names:
                raise SpecificationError(
                    f"variable {var} is not an argument or return value of "
                    f"{sig}")

    def _check_symmetry(self, method: str, formula: Formula,
                        samples: int = 64, seed: int = 20140609) -> None:
        """Randomized check that ``ϕ_m^m(~x1;~x2) ≡ ϕ_m^m(~x2;~x1)``.

        Definition 4.1 requires self-pair formulas to denote symmetric
        predicates.  Full semantic equivalence checking is undecidable for
        arbitrary interpreted predicates, so we sample assignments over a
        small mixed domain (the seed is fixed: specs validate
        deterministically).
        """
        swapped = swap_sides(formula)
        variables = sorted(vars_of(formula) | vars_of(swapped),
                           key=lambda v: (v.name, int(v.side)))
        rng = random.Random(seed)
        domain = [NIL, 0, 1, 2, "a", "b"]
        for _ in range(samples):
            env = {var: rng.choice(domain) for var in variables}
            lookup = env.__getitem__
            if evaluate(formula, lookup) != evaluate(swapped, lookup):
                raise SpecificationError(
                    f"ϕ_{{{method},{method}}} = {formula} is not symmetric: "
                    f"counterexample {[(str(v), env[v]) for v in variables]}")

    # -- queries -----------------------------------------------------------------

    @property
    def methods(self) -> Mapping[str, MethodSig]:
        return dict(self._methods)

    def signature(self, method: str) -> MethodSig:
        return self._sig(method)

    def formula_for(self, m1: str, m2: str) -> Formula:
        """``ϕ_{m1,m2}`` oriented so side 1 is ``m1`` (swapping if needed)."""
        self._sig(m1), self._sig(m2)
        if (m1, m2) in self._formulas:
            return self._formulas[(m1, m2)]
        if (m2, m1) in self._formulas:
            return swap_sides(self._formulas[(m2, m1)])
        raise SpecificationError(
            f"{self.kind}: no commutativity formula for pair ({m1}, {m2}); "
            f"call pair() or default_true()/default_false()")

    def pairs(self) -> Iterable[Tuple[str, str, Formula]]:
        """All stored pairs ``(m1, m2, ϕ)`` in insertion order."""
        for (m1, m2), formula in self._formulas.items():
            yield m1, m2, formula

    def is_complete(self) -> bool:
        """Whether every method pair has a formula."""
        for m1, m2 in itertools.combinations_with_replacement(
                sorted(self._methods), 2):
            if (m1, m2) not in self._formulas and (m2, m1) not in self._formulas:
                return False
        return True

    def is_ecl(self) -> bool:
        """Whether every formula is in the ECL fragment."""
        return all(is_ecl(f) for _, _, f in self.pairs())

    def commutes(self, a: Action, b: Action) -> bool:
        """Evaluate ``ϕ(a, b)`` on two concrete actions (Section 4.1).

        Actions on different objects always commute (Section 3.1).
        """
        if a.obj != b.obj:
            return True
        formula = self.formula_for(a.method, b.method)
        env1 = self._sig(a.method).bind(a)
        env2 = self._sig(b.method).bind(b)

        def lookup(var: Var) -> Any:
            env = env1 if var.side is Side.FIRST else env2
            return env[var.name]

        return evaluate(formula, lookup)

    def action(self, obj, method: str, *args, returns=()) -> Action:
        """Build an :class:`Action`, validating arity against the signature."""
        if not isinstance(returns, tuple):
            returns = (returns,)
        sig = self._sig(method)
        action = Action(obj, method, tuple(args), returns)
        sig.bind(action)  # arity check
        return action

    def __repr__(self) -> str:
        return (f"CommutativitySpec({self.kind!r}, methods="
                f"{sorted(self._methods)}, pairs={len(self._formulas)})")
