"""Commutativity logic: formulas, the ECL fragment, specifications, the
translation to access point representations, and executable semantics
(Sections 4.1 and 6 of the paper)."""

from .formulas import (FALSE, TRUE, And, Atom, Const, FalseF, Formula, Not,
                       Or, Side, Term, TrueF, Var, atoms_of, conj, const,
                       disj, eq, evaluate, ge, gt, le, lt, map_atoms, ne,
                       negate, normalize_sides, register_predicate, sides_of,
                       subformulas, swap_sides, var1, var2, vars_of)
from .fragments import (canonical_lb_atom, is_ecl, is_lb, is_lb_atom,
                        is_ls_atom, is_simple, lb_atoms, ls_atoms,
                        require_ecl)
from .parser import default_resolver, parse_formula
from .semantics import (ObjectSemantics, SoundnessCounterexample,
                        apply_action, check_soundness, commute_at,
                        commute_on_states, final_state)
from .simplify import simplify, substitute_beta, to_ls
from .spec import CommutativitySpec, MethodSig
from .translate import (DS, RawSchema, TranslatedRepresentation,
                        TranslationResult, build_raw_translation,
                        build_representation, translate)
from .optimize import (merge_congruent, optimize_translation,
                       remove_conflict_free)
from .pretty import spec_report

__all__ = [
    # formulas
    "FALSE", "TRUE", "And", "Atom", "Const", "FalseF", "Formula", "Not",
    "Or", "Side", "Term", "TrueF", "Var", "atoms_of", "conj", "const",
    "disj", "eq", "evaluate", "ge", "gt", "le", "lt", "map_atoms", "ne",
    "negate", "normalize_sides", "register_predicate", "sides_of",
    "subformulas", "swap_sides", "var1", "var2", "vars_of",
    # fragments
    "canonical_lb_atom", "is_ecl", "is_lb", "is_lb_atom", "is_ls_atom",
    "is_simple", "lb_atoms", "ls_atoms", "require_ecl",
    # parser
    "default_resolver", "parse_formula",
    # semantics
    "ObjectSemantics", "SoundnessCounterexample", "apply_action",
    "check_soundness", "commute_at", "commute_on_states", "final_state",
    # simplify
    "simplify", "substitute_beta", "to_ls",
    # spec
    "CommutativitySpec", "MethodSig",
    # translate / optimize
    "DS", "RawSchema", "TranslatedRepresentation", "TranslationResult",
    "build_raw_translation", "build_representation", "translate",
    "merge_congruent", "optimize_translation", "remove_conflict_free",
    "spec_report",
]
