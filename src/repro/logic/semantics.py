"""Executable abstract semantics and commutativity (Definitions 3.1/4.2).

The paper specifies methods by their *effects* ``LaM ∈ H ⇀ H`` on the
abstract shared state (Fig. 5 gives the dictionary's).  Two actions commute
iff ``LaM ∘ LbM = LbM ∘ LaM`` as partial maps.  Note that an action carries
its return values, so its effect is partial: ``o.size()/3`` is defined only
on states where the size is 3.

:class:`ObjectSemantics` is the executable form: ``apply(state, method,
args)`` returns ``(new_state, returns)``.  From it we derive the partial
effect of an :class:`~repro.core.events.Action` (defined iff the actual
returns match the action's recorded ones) and hence:

* :func:`commute_at` / :func:`commute_on_states` — Definition 3.1 checked on
  concrete states;
* :func:`check_soundness` — randomized validation of Definition 4.2: sample
  action pairs and states, and whenever ``ϕ(a, b)`` holds verify the effects
  commute.  Returns the first counterexample or ``None``.

This module also provides :func:`final_state`, used by the Theorem 5.2
property tests (race-free traces are HB-deterministic).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from ..core.errors import SpecificationError
from ..core.events import Action
from .spec import CommutativitySpec

__all__ = [
    "ObjectSemantics",
    "apply_action",
    "commute_at",
    "commute_on_states",
    "final_state",
    "SoundnessCounterexample",
    "check_soundness",
]


class ObjectSemantics(ABC):
    """Executable method effects for one object kind.

    States must be immutable values (tuples, frozensets, ...) so they can be
    compared for the ``d' = d`` checks and shared without defensive copies.
    """

    #: the object kind this semantics describes (matches the spec's)
    kind: str = "object"

    @abstractmethod
    def initial_state(self) -> Any:
        """The canonical starting state (e.g. the everywhere-nil map)."""

    @abstractmethod
    def apply(self, state: Any, method: str,
              args: Tuple[Any, ...]) -> Tuple[Any, Tuple[Any, ...]]:
        """Run ``method(args)`` at ``state``; return ``(state', returns)``."""

    def sample_states(self, rng: random.Random, count: int) -> List[Any]:
        """States to probe during soundness checking.

        Default: the initial state plus states reached by short random
        method sequences (subclasses may override with a smarter sampler).
        """
        states = [self.initial_state()]
        for _ in range(max(0, count - 1)):
            state = self.initial_state()
            for _ in range(rng.randrange(0, 6)):
                method, args = self.sample_invocation(rng)
                state, _ = self.apply(state, method, args)
            states.append(state)
        return states

    @abstractmethod
    def sample_invocation(self, rng: random.Random) -> Tuple[str, Tuple[Any, ...]]:
        """A random ``(method, args)`` over a small value domain."""


def apply_action(semantics: ObjectSemantics, state: Any,
                 action: Action) -> Optional[Any]:
    """The partial effect ``LaM``: the next state, or ``None`` if undefined.

    ``LaM`` is undefined at ``state`` when executing the method there yields
    returns different from those recorded in the action (Section 3.1's
    ``Lo.size()/nM`` example).
    """
    new_state, returns = semantics.apply(state, action.method, action.args)
    if returns != action.returns:
        return None
    return new_state


def commute_at(semantics: ObjectSemantics, state: Any,
               a: Action, b: Action) -> bool:
    """Definition 3.1 at one state: ``(LaM ∘ LbM)(s) = (LbM ∘ LaM)(s)``.

    Compositions of partial maps: undefined results compare equal to each
    other (both orders undefined at ``s``) and unequal to any state.
    """
    def compose(first: Action, second: Action) -> Optional[Any]:
        mid = apply_action(semantics, state, first)
        if mid is None:
            return None
        return apply_action(semantics, mid, second)

    # LaM ∘ LbM applies b first (function composition reads right-to-left).
    return compose(b, a) == compose(a, b)


def commute_on_states(semantics: ObjectSemantics, states: Iterable[Any],
                      a: Action, b: Action) -> bool:
    """Definition 3.1 restricted to a set of probe states."""
    return all(commute_at(semantics, state, a, b) for state in states)


def final_state(semantics: ObjectSemantics, state: Any,
                actions: Sequence[Action]) -> Optional[Any]:
    """Apply a sequence of actions; ``None`` if any effect is undefined."""
    for action in actions:
        state = apply_action(semantics, state, action)
        if state is None:
            return None
    return state


@dataclass(frozen=True)
class SoundnessCounterexample:
    """A witness that a specification is unsound (Definition 4.2 violated).

    ``seed`` is the RNG seed of the :func:`check_soundness` run that found
    the witness — quoting it in the message makes any randomized failure
    reproducible verbatim: re-run with the printed seed and the same
    sample budget to land on the identical action pair and state.
    """

    state: Any
    a: Action
    b: Action
    seed: Optional[int] = None

    def __str__(self) -> str:
        suffix = "" if self.seed is None else f" [seed={self.seed}]"
        return (f"spec claims {self.a} and {self.b} commute, but at state "
                f"{self.state!r} the composed effects differ{suffix}")


def check_soundness(spec: CommutativitySpec, semantics: ObjectSemantics,
                    samples: int = 300, states_per_sample: int = 8,
                    seed: int = 20140611,
                    obj: Any = "o") -> Optional[SoundnessCounterexample]:
    """Randomized soundness check of a specification against a semantics.

    For ``samples`` random action pairs (generated by running the sampled
    invocations at sampled states so that recorded returns are realizable),
    whenever the specification asserts commutativity, verify Definition 3.1
    at ``states_per_sample`` probe states.  Deterministic for a fixed seed,
    and any counterexample carries the seed that produced it, so a failure
    message alone is enough to replay the exact run.

    Returns ``None`` if no violation was found.  Like all testing this is
    one-sided: it can prove unsoundness, not soundness — which mirrors the
    paper's stance that specifications are *assumed* sound (imprecision in
    the other direction is explicitly allowed).
    """
    rng = random.Random(seed)

    def realized_action(state: Any) -> Action:
        method, args = semantics.sample_invocation(rng)
        _, returns = semantics.apply(state, method, args)
        return Action(obj, method, args, returns)

    for _ in range(samples):
        states = semantics.sample_states(rng, states_per_sample)
        base = rng.choice(states)
        a = realized_action(base)
        b = realized_action(base)
        if not spec.commutes(a, b):
            continue
        for state in states:
            if not commute_at(semantics, state, a, b):
                return SoundnessCounterexample(state=state, a=a, b=b,
                                               seed=seed)
    return None
