"""Atomicity (conflict-serializability) checking generalized to access
points — the Section 8 extension of the paper, executable.

Public surface:

* :func:`atomic` — context manager marking an intended-atomic block in a
  monitored program (emits BEGIN/COMMIT events);
* :class:`AtomicityChecker` — offline Velodrome-style analysis of a
  recorded trace, in COMMUTATIVITY (access points) or READ_WRITE (classic)
  conflict mode;
* :func:`split_transactions` — the trace → transactions partition.
"""

from contextlib import contextmanager

from ..runtime.monitor import Monitor
from .checker import (AtomicityChecker, AtomicityReport, AtomicityViolation,
                      ConflictMode)
from .online import AtomicityAnalyzer, OnlineAtomicityViolation
from .transactions import Transaction, split_transactions

__all__ = ["atomic", "AtomicityChecker", "AtomicityReport",
           "AtomicityViolation", "AtomicityAnalyzer",
           "OnlineAtomicityViolation", "ConflictMode", "Transaction",
           "split_transactions"]


@contextmanager
def atomic(monitor: Monitor):
    """Mark the enclosed operations as one intended-atomic block.

    Purely an annotation: no locking is performed (the point of atomicity
    *checking* is to find blocks that needed it).  BEGIN/COMMIT events are
    recorded in the monitor's trace for offline analysis; the race
    detectors ignore them.
    """
    monitor.on_begin()
    try:
        yield
    finally:
        monitor.on_commit()
