"""Splitting a trace into transactions.

Velodrome-style atomicity checking reasons about *transactions*: maximal
intended-atomic blocks delimited by BEGIN/COMMIT events, with every event
outside a block forming its own *unary* transaction.  This module performs
that split and owns the bookkeeping types.

The paper's Section 8 argues dynamic atomicity checkers "use a low-level
notion of conflict based on reads and writes [which] can be extended to
handle much richer commutativity specifications (with the appropriate
modifications of the atomicity algorithms to deal with access points)" —
:mod:`repro.atomicity.checker` is that modification; this module is the
shared scaffolding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.errors import MonitorError
from ..core.events import Event, EventKind
from ..core.trace import Trace
from ..core.vector_clock import Tid

__all__ = ["Transaction", "split_transactions"]


@dataclass
class Transaction:
    """A maximal atomic block (or a unary wrapper around one event).

    ``label`` is a human-readable handle used in violation reports:
    ``"T3@t1"`` is the third transaction of thread ``t1``.
    """

    txn_id: int
    tid: Tid
    unary: bool
    events: List[Event] = field(default_factory=list)

    @property
    def start_index(self) -> int:
        return self.events[0].index if self.events else -1

    @property
    def end_index(self) -> int:
        return self.events[-1].index if self.events else -1

    @property
    def label(self) -> str:
        kind = "u" if self.unary else "T"
        return f"{kind}{self.txn_id}@{self.tid}"

    def operations(self) -> Iterator[Event]:
        """The events that can conflict (everything but BEGIN/COMMIT)."""
        for event in self.events:
            if not event.kind.is_transactional():
                yield event

    def __str__(self) -> str:
        return self.label


def split_transactions(trace: Trace) -> List[Transaction]:
    """Partition a trace's events into transactions, in trace order.

    Every event between a thread's BEGIN and its matching COMMIT belongs to
    one transaction; everything else becomes a unary transaction.  Nested
    BEGINs and COMMITs without a BEGIN are protocol errors.  An unterminated
    block is closed at end-of-trace (the program was cut short; the events
    observed so far still constitute the intended-atomic block).
    """
    transactions: List[Transaction] = []
    open_blocks: Dict[Tid, Transaction] = {}
    next_id = 0

    for event in trace:
        tid = event.tid
        if event.kind is EventKind.BEGIN:
            if tid in open_blocks:
                raise MonitorError(
                    f"thread {tid!r}: nested atomic blocks are not "
                    f"supported (BEGIN inside BEGIN)")
            txn = Transaction(txn_id=next_id, tid=tid, unary=False)
            next_id += 1
            txn.events.append(event)
            open_blocks[tid] = txn
            transactions.append(txn)
            continue
        if event.kind is EventKind.COMMIT:
            txn = open_blocks.pop(tid, None)
            if txn is None:
                raise MonitorError(
                    f"thread {tid!r}: COMMIT without a matching BEGIN")
            txn.events.append(event)
            continue
        block = open_blocks.get(tid)
        if block is not None:
            block.events.append(event)
        else:
            txn = Transaction(txn_id=next_id, tid=tid, unary=True)
            next_id += 1
            txn.events.append(event)
            transactions.append(txn)
    return transactions
