"""Commutativity-aware atomicity checking (Velodrome, generalized).

Velodrome (Flanagan, Freund & Yi, PLDI'08) checks *conflict
serializability*: build the transactional happens-before graph — nodes are
transactions, with an edge ``T1 → T2`` whenever an operation of ``T1``
precedes and conflicts with an operation of ``T2`` in the observed trace —
and report a violation iff the graph has a cycle through a non-unary
transaction (the observed interleaving is then not equivalent to any serial
order of the atomic blocks).

Velodrome's conflicts are low-level reads and writes.  The paper's Section 8
observes that this "low-level definition of conflict can be extended to
handle much richer commutativity specifications (with the appropriate
modifications of the atomicity algorithms to deal with access points)".
:class:`AtomicityChecker` implements exactly that: in its
``COMMUTATIVITY`` mode, two method invocations conflict iff their access
points conflict — so an interleaved *commuting* operation (a counter
increment between two increments of an atomic block, a put to a different
key) no longer breaks serializability, eliminating a class of Velodrome
false alarms.  The ``READ_WRITE`` mode is classic Velodrome over the
low-level event stream, kept for comparison (the test-suite and the
ablation bench contrast the two on the same traces).

Both modes treat synchronization as conflicting operations on the lock
(release → acquire, fork/join edges), as Velodrome does.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from ..core.access_points import AccessPointRepresentation
from ..core.events import Event, EventKind, ObjectId
from ..core.trace import Trace
from ..runtime.shared import is_internal_lock
from .transactions import Transaction, split_transactions

__all__ = ["ConflictMode", "AtomicityViolation", "AtomicityReport",
           "AtomicityChecker"]


class ConflictMode(enum.Enum):
    """Which notion of conflict drives the serializability graph."""

    COMMUTATIVITY = "commutativity"   # access points (this work)
    READ_WRITE = "read-write"         # classic Velodrome


@dataclass(frozen=True)
class AtomicityViolation:
    """A cycle in the transactional happens-before graph."""

    cycle: Tuple[Transaction, ...]

    def __str__(self) -> str:
        path = " → ".join(txn.label for txn in self.cycle)
        return f"atomicity violation: {path} → {self.cycle[0].label}"


@dataclass
class AtomicityReport:
    """Everything :meth:`AtomicityChecker.analyze` discovered."""

    transactions: List[Transaction]
    graph: "nx.DiGraph"
    violations: List[AtomicityViolation]
    conflict_edges: int = 0

    @property
    def serializable(self) -> bool:
        return not self.violations


class AtomicityChecker:
    """Offline conflict-serializability analysis of a recorded trace.

    Usage::

        checker = AtomicityChecker(ConflictMode.COMMUTATIVITY)
        checker.register_object("o", dictionary_representation())
        report = checker.analyze(monitor.trace)
        report.serializable  # or inspect report.violations

    In COMMUTATIVITY mode, objects must be registered with their access
    point representations; actions on unregistered objects are treated as
    non-conflicting (mirroring RD2's behaviour for uninstrumented classes).
    In READ_WRITE mode registrations are ignored and the low-level
    READ/WRITE events carry the conflicts.
    """

    def __init__(self, mode: ConflictMode = ConflictMode.COMMUTATIVITY,
                 include_sync: bool = True):
        self.mode = mode
        self.include_sync = include_sync
        self._representations: Dict[ObjectId, AccessPointRepresentation] = {}

    def register_object(self, obj: ObjectId,
                        representation: AccessPointRepresentation) -> None:
        self._representations[obj] = representation

    # -- conflict footprints ---------------------------------------------------
    #
    # Each operation is mapped to a set of (resource, token) pairs plus a
    # per-resource conflict test; two operations conflict iff they touch a
    # common resource with conflicting tokens.  For access points the
    # resource is the concrete point and the token the representation;
    # for memory it is the location with a read/write token; for locks the
    # lock id (all pairs conflict: rel/acq ordering matters to Velodrome).

    def _footprint(self, event: Event):
        kind = event.kind
        if kind is EventKind.ACTION:
            if self.mode is not ConflictMode.COMMUTATIVITY:
                return
            rep = self._representations.get(event.action.obj)
            if rep is None:
                return
            for point in rep.points_of(event.action):
                yield ("pt", point), rep
        elif kind.is_memory():
            if self.mode is not ConflictMode.READ_WRITE:
                return
            yield (("mem", event.location),
                   "w" if kind is EventKind.WRITE else "r")
        elif kind in (EventKind.ACQUIRE, EventKind.RELEASE):
            if not self.include_sync:
                return
            if (self.mode is ConflictMode.COMMUTATIVITY
                    and is_internal_lock(event.lock)):
                return  # below the interface abstraction, as in RD2
            yield (("lock", event.lock), "sync")
        elif kind in (EventKind.FORK, EventKind.JOIN):
            if self.include_sync:
                yield (("thread", event.peer), "sync")

    @staticmethod
    def _tokens_conflict(resource, token1, token2) -> bool:
        if resource[0] == "mem":
            return "w" in (token1, token2)
        return True  # locks and fork/join edges always order

    # -- analysis ------------------------------------------------------------------

    def analyze(self, trace: Trace) -> AtomicityReport:
        """Build the transactional happens-before graph; find cycles."""
        transactions = split_transactions(trace)
        txn_of_event: Dict[int, Transaction] = {}
        for txn in transactions:
            for event in txn.events:
                txn_of_event[event.index] = txn

        graph = nx.DiGraph()
        for txn in transactions:
            graph.add_node(txn.txn_id, transaction=txn)

        edges = 0

        def add_edge(earlier: Transaction, later: Transaction) -> None:
            nonlocal edges
            if earlier.txn_id == later.txn_id:
                return
            if not graph.has_edge(earlier.txn_id, later.txn_id):
                graph.add_edge(earlier.txn_id, later.txn_id)
                edges += 1

        # Program order: consecutive transactions of the same thread.
        last_of_thread: Dict = {}
        for txn in transactions:
            previous = last_of_thread.get(txn.tid)
            if previous is not None:
                add_edge(previous, txn)
            last_of_thread[txn.tid] = txn

        # Conflict order.  For access points we exploit the factored
        # conflict structure: group prior touches per *resource key* so a
        # new touch only consults resources it can conflict with.
        touches: Dict[Hashable, List[Tuple[Transaction, object]]] = {}
        for event in trace:
            txn = txn_of_event.get(event.index)
            if txn is None:
                continue
            for resource, token in self._footprint(event):
                key = self._resource_key(resource)
                for prior_txn, prior in touches.get(key, ()):
                    prior_resource, prior_token = prior
                    if prior_txn.txn_id == txn.txn_id:
                        continue
                    if self._resources_conflict(prior_resource, prior_token,
                                                resource, token):
                        add_edge(prior_txn, txn)
                bucket = touches.setdefault(key, [])
                bucket.append((txn, (resource, token)))

        violations = []
        for component in nx.strongly_connected_components(graph):
            if len(component) < 2:
                continue
            members = sorted(component)
            cycle = tuple(graph.nodes[node]["transaction"]
                          for node in members)
            if any(not txn.unary for txn in cycle):
                violations.append(AtomicityViolation(cycle=cycle))
        violations.sort(key=lambda v: v.cycle[0].txn_id)
        return AtomicityReport(transactions=transactions, graph=graph,
                               violations=violations, conflict_edges=edges)

    def _resource_key(self, resource) -> Hashable:
        tag = resource[0]
        if tag == "pt":
            # Points conflict only at equal value (or plain/plain within
            # conflicting schemas); bucket by object + value so candidate
            # sets stay small, mirroring the detector's hashing.
            point = resource[1]
            return ("pt", point.obj, point.value)
        return resource

    def _resources_conflict(self, res1, token1, res2, token2) -> bool:
        tag1, tag2 = res1[0], res2[0]
        if tag1 != tag2:
            return False
        if tag1 == "pt":
            rep = token1
            return rep.conflicts(res1[1], res2[1])
        if res1 != res2:
            return False
        return self._tokens_conflict(res1, token1, token2)
