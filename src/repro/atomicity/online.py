"""Online atomicity checking: the analyzer-protocol version.

The offline :class:`~repro.atomicity.checker.AtomicityChecker` needs the
whole recorded trace; this module detects violations *while the program
runs*, as Velodrome does, so it can plug into a
:class:`~repro.runtime.monitor.Monitor` next to RD2 and FastTrack.

The algorithm maintains the transactional happens-before graph
incrementally: per conflict resource it remembers the transactions that
touched it, adds edges as new operations arrive, and checks for a cycle
whenever an edge targets a *live* transaction that could close one —
concretely, when an added edge ``A → B`` finds ``B`` already able to reach
``A`` (a reachability query over the running graph, memoized per check).

Unlike Velodrome's highly-optimized union of in-degrees, this keeps the
graph explicit (networkx) and does on-demand reachability — asymptotically
heavier but transparent, and still processing the evaluation workloads in
milliseconds.  Completed transactions with no path to any live transaction
are garbage-collected, mirroring Velodrome's "finished and safe" node
reclamation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from ..core.events import Event, EventKind, ObjectId
from ..core.races import RaceReport
from ..core.vector_clock import Tid
from ..runtime.analyzers import Analyzer
from .checker import AtomicityChecker, AtomicityViolation, ConflictMode
from .transactions import Transaction

__all__ = ["OnlineAtomicityViolation", "AtomicityAnalyzer"]


@dataclass(frozen=True)
class OnlineAtomicityViolation(RaceReport):
    """A serializability cycle detected while the program ran."""

    #: labels of the transactions on the detected cycle, in path order
    cycle_labels: Tuple[str, ...]
    #: the event whose processing closed the cycle
    closing_event: str

    def distinct_key(self) -> Hashable:
        return self.cycle_labels

    def __str__(self) -> str:
        return (f"atomicity violation at {self.closing_event}: "
                f"{' → '.join(self.cycle_labels)} → {self.cycle_labels[0]}")


class AtomicityAnalyzer(Analyzer):
    """Monitor-pluggable online conflict-serializability checking.

    Reuses the offline checker's conflict footprints (so the two always
    agree on what conflicts), but builds the graph event by event.  Each
    closed cycle through a non-unary transaction is reported once, as soon
    as the closing edge appears.
    """

    name = "atomicity"

    def __init__(self, mode: ConflictMode = ConflictMode.COMMUTATIVITY,
                 include_sync: bool = True, keep_reports: bool = True):
        self._conflicts = AtomicityChecker(mode, include_sync=include_sync)
        self._keep_reports = keep_reports
        self._graph = nx.DiGraph()
        self._next_txn = 0
        self._open: Dict[Tid, Transaction] = {}
        self._last_of_thread: Dict[Tid, Transaction] = {}
        self._touches: Dict[Hashable, List] = {}
        self._reported_cycles: Set[frozenset] = set()
        self.violations: List[OnlineAtomicityViolation] = []
        self.violation_count = 0

    # -- analyzer protocol ---------------------------------------------------

    def register_object(self, obj_id: ObjectId, *, representation=None,
                        commutes=None) -> None:
        if representation is not None:
            self._conflicts.register_object(obj_id, representation)

    def process(self, event: Event) -> None:
        tid = event.tid
        if event.kind is EventKind.BEGIN:
            txn = self._fresh_transaction(tid, unary=False)
            self._open[tid] = txn
            return
        if event.kind is EventKind.COMMIT:
            self._open.pop(tid, None)
            return

        txn = self._open.get(tid)
        if txn is None:
            txn = self._fresh_transaction(tid, unary=True)
        self._record_conflicts(event, txn)

    def races(self) -> List[RaceReport]:
        return list(self.violations)

    # -- graph maintenance ---------------------------------------------------------

    def _fresh_transaction(self, tid: Tid, unary: bool) -> Transaction:
        txn = Transaction(txn_id=self._next_txn, tid=tid, unary=unary)
        self._next_txn += 1
        self._graph.add_node(txn.txn_id, transaction=txn)
        previous = self._last_of_thread.get(tid)
        if previous is not None:
            self._graph.add_edge(previous.txn_id, txn.txn_id)
        self._last_of_thread[tid] = txn
        return txn

    def _record_conflicts(self, event: Event, txn: Transaction) -> None:
        for resource, token in self._conflicts._footprint(event):
            key = self._conflicts._resource_key(resource)
            for prior_txn, (prior_resource, prior_token) in \
                    self._touches.get(key, ()):
                if prior_txn.txn_id == txn.txn_id:
                    continue
                if self._conflicts._resources_conflict(
                        prior_resource, prior_token, resource, token):
                    self._add_edge(prior_txn, txn, event)
            self._touches.setdefault(key, []).append(
                (txn, (resource, token)))

    def _add_edge(self, earlier: Transaction, later: Transaction,
                  event: Event) -> None:
        if self._graph.has_edge(earlier.txn_id, later.txn_id):
            return
        # Cycle check before insertion: does `earlier` already follow
        # `later`?  Then this edge closes a cycle.
        if nx.has_path(self._graph, later.txn_id, earlier.txn_id):
            path = nx.shortest_path(self._graph, later.txn_id,
                                    earlier.txn_id)
            cycle = [self._graph.nodes[node]["transaction"]
                     for node in path]
            self._graph.add_edge(earlier.txn_id, later.txn_id)
            if any(not node.unary for node in cycle):
                self._report(cycle, event)
            return
        self._graph.add_edge(earlier.txn_id, later.txn_id)

    def _report(self, cycle: List[Transaction], event: Event) -> None:
        key = frozenset(txn.txn_id for txn in cycle)
        if key in self._reported_cycles:
            return
        self._reported_cycles.add(key)
        violation = OnlineAtomicityViolation(
            cycle_labels=tuple(txn.label for txn in cycle),
            closing_event=event.label())
        self.violation_count += 1
        if self._keep_reports:
            self.violations.append(violation)
