"""Regenerate Table 2: the paper's entire evaluation table.

For each of the six H2/PolePosition rows the driver runs the circuit under
the three configurations (uninstrumented / FASTTRACK / RD2), reporting
queries-per-second and the ``total (distinct)`` race tallies; the Cassandra
DynamicEndpointSnitch row reports seconds, as in the paper.

The paper's absolute numbers come from a JVM testbed and are not expected
to match; the *shape* is what the reproduction claims:

* RD2's overhead is comparable to FASTTRACK's;
* FASTTRACK reports many highly redundant low-level races on a few
  variables, RD2 few commutativity races on a couple of maps;
* the concurrency circuits exhibit the H2 ``freedPageSpace``/``chunks``
  races and the snitch its ``samples`` race, while QueryCentric, Complex
  and NestedLists are commutativity-race-free.

Run as ``python -m repro.bench.table2`` (or the ``repro-table2`` script).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.polepos.circuits import CIRCUITS, CircuitConfig, run_circuit
from ..apps.snitch.snitch import SnitchTestConfig, run_snitch_test
from ..core.races import RaceTally
from ..runtime.monitor import Monitor
from .harness import CONFIGURATIONS, Measurement, measure
from .reporting import format_rate, format_seconds, render_table

__all__ = ["PAPER_TABLE2", "Row", "run_row", "run_table2", "render",
           "main"]

#: the published Table 2, for side-by-side comparison
#: row -> (uninstr, fasttrack, rd2, ft_races, rd2_races); H2 rows in qps,
#: the snitch row in seconds.
PAPER_TABLE2: Dict[str, Tuple[str, str, str, str, str]] = {
    "ComplexConcurrency": ("2011 qps", "685 qps", "425 qps",
                           "1784 (26)", "200 (2)"),
    "ComplexConcurrency-alt": ("1610 qps", "601 qps", "457 qps",
                               "1121 (24)", "171 (2)"),
    "QueryCentricConcurrency": ("1666 qps", "599 qps", "605 qps",
                                "209 (4)", "0 (0)"),
    "InsertCentricConcurrency": ("1912 qps", "622 qps", "622 qps",
                                 "1551 (25)", "22 (2)"),
    "Complex": ("1874 qps", "1143 qps", "989 qps", "9 (2)", "0 (0)"),
    "NestedLists": ("1893 qps", "1086 qps", "807 qps", "202 (2)", "0 (0)"),
    "DynamicEndpointSnitch": ("2.907 s", "12.226 s", "13.527 s",
                              "24 (8)", "81 (2)"),
}


@dataclass
class Row:
    """One benchmark row across all configurations."""

    application: str
    benchmark: str
    timed_in_seconds: bool
    measurements: Dict[str, Measurement]

    def performance(self, config: str) -> str:
        measurement = self.measurements[config]
        if self.timed_in_seconds:
            return format_seconds(measurement.elapsed)
        return format_rate(measurement.qps)

    def races(self, config: str) -> RaceTally:
        return self.measurements[config].races_for()


def _circuit_workload(config: CircuitConfig, seed: int,
                      switch_probability: float):
    def workload(monitor: Monitor) -> int:
        result = run_circuit(config, monitor, seed=seed,
                             switch_probability=switch_probability)
        return result.operations
    return workload


def _snitch_workload(config: SnitchTestConfig, seed: int,
                     switch_probability: float):
    def workload(monitor: Monitor) -> int:
        result = run_snitch_test(config, monitor, seed=seed,
                                 switch_probability=switch_probability)
        return result.timings + result.score_rounds
    return workload


def run_row(benchmark: str, seed: int = 0, repeats: int = 1,
            scale: float = 1.0, switch_probability: float = 1.0,
            configs: Sequence[str] = CONFIGURATIONS) -> Row:
    """Measure one Table 2 row under every configuration.

    ``scale`` multiplies the per-worker operation counts (used by the
    pytest-benchmark wrappers to keep individual runs short).
    """
    if benchmark == "DynamicEndpointSnitch":
        snitch_config = SnitchTestConfig(
            timings_per_producer=max(1, int(150 * scale)),
            score_updates=max(1, int(40 * scale)))
        factory = lambda: _snitch_workload(snitch_config, seed,
                                           switch_probability)
        application, timed = "Cassandra", True
    else:
        circuit = CIRCUITS[benchmark]
        if scale != 1.0:
            circuit = CircuitConfig(
                **{**circuit.__dict__,
                   "ops_per_worker": max(1, int(circuit.ops_per_worker
                                                * scale)),
                   "prepopulate": circuit.prepopulate})
        factory = lambda: _circuit_workload(circuit, seed,
                                            switch_probability)
        application, timed = "H2 database", False

    measurements = {config: measure(factory(), config, repeats=repeats)
                    for config in configs}
    return Row(application=application, benchmark=benchmark,
               timed_in_seconds=timed, measurements=measurements)


def run_table2(seed: int = 0, repeats: int = 1, scale: float = 1.0,
               switch_probability: float = 1.0,
               benchmarks: Optional[Sequence[str]] = None) -> List[Row]:
    names = list(benchmarks) if benchmarks else list(PAPER_TABLE2)
    return [run_row(name, seed=seed, repeats=repeats, scale=scale,
                    switch_probability=switch_probability)
            for name in names]


def render(rows: Sequence[Row], with_paper: bool = True) -> str:
    """Render measured rows (optionally alongside the published numbers)."""
    headers = ["Benchmark", "Uninstr.", "FASTTRACK", "RD2",
               "FT races", "RD2 races"]
    body = []
    for row in rows:
        body.append([
            row.benchmark,
            row.performance("uninstrumented"),
            row.performance("fasttrack"),
            row.performance("rd2"),
            str(row.races("fasttrack")),
            str(row.races("rd2")),
        ])
    out = [render_table(headers, body,
                        title="Table 2 (measured on this machine)")]
    if with_paper:
        paper_body = [[name, *PAPER_TABLE2[name]] for name in PAPER_TABLE2
                      if any(r.benchmark == name for r in rows)]
        out.append("")
        out.append(render_table(headers, paper_body,
                                title="Table 2 (paper, JVM testbed)"))
    return "\n".join(out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's Table 2 on this machine.")
    parser.add_argument("--seed", type=int, default=0,
                        help="scheduler seed (default 0)")
    parser.add_argument("--repeats", type=int, default=1,
                        help="timing repeats per cell; best is kept")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload scale factor")
    parser.add_argument("--benchmark", action="append", dest="benchmarks",
                        choices=list(PAPER_TABLE2),
                        help="run only the named row(s)")
    parser.add_argument("--no-paper", action="store_true",
                        help="omit the published reference table")
    args = parser.parse_args(argv)
    rows = run_table2(seed=args.seed, repeats=args.repeats,
                      scale=args.scale, benchmarks=args.benchmarks)
    print(render(rows, with_paper=not args.no_paper))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
