"""The Section 5.4 complexity experiment: Θ(1) vs Θ(|active|) per action.

Two detectors consume the same growing dictionary workload:

* **ENUMERATE** over the translated (bounded) representation — conflict
  checks per action stay constant as the trace grows (Theorem 6.6);
* **SCAN** over the naive one-point-per-action representation — checks per
  action grow linearly with the set of active points (the direct detector
  behaves likewise over recorded actions).

The workload inserts mostly-fresh keys from several unordered threads, so
``active(o)`` keeps growing; the series of per-action check counts is the
"figure" the paper argues by construction.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Sequence

from ..core.access_points import NaiveRepresentation
from ..core.detector import CommutativityRaceDetector, Strategy
from ..core.direct import DirectDetector
from ..core.events import Action, NIL
from ..core.trace import Trace, TraceBuilder
from ..specs.dictionary import (DictionarySemantics, dictionary_spec,
                                dictionary_representation)
from .reporting import render_table

__all__ = ["ScalingPoint", "scaling_trace", "run_scaling", "render_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    actions: int
    enumerate_checks_per_action: float
    scan_checks_per_action: float
    direct_checks_per_action: float
    enumerate_seconds: float
    scan_seconds: float
    direct_seconds: float


def scaling_trace(actions: int, threads: int = 4, seed: int = 0,
                  fresh_key_bias: float = 0.9) -> Trace:
    """A growing-footprint dictionary workload with unordered threads."""
    rng = random.Random(seed)
    semantics = DictionarySemantics()
    state = semantics.initial_state()
    builder = TraceBuilder(root=0)
    for worker in range(1, threads + 1):
        builder.fork(0, worker)
    next_key = 0
    for index in range(actions):
        tid = rng.randrange(1, threads + 1)
        roll = rng.random()
        if roll < fresh_key_bias:
            key = f"key{next_key}"
            next_key += 1
            method, args = "put", (key, index)
        elif roll < 0.95 and next_key:
            key = f"key{rng.randrange(next_key)}"
            method, args = "get", (key,)
        else:
            method, args = "size", ()
        state, returns = semantics.apply(state, method, args)
        builder.action(tid, Action("o", method, args, returns))
    return builder.build()


def _time_detector(detector, register, trace) -> tuple:
    register(detector)
    started = time.perf_counter()
    for event in trace:
        detector.process(event)
    elapsed = time.perf_counter() - started
    return detector.stats.checks_per_action(), elapsed


def run_scaling(sizes: Sequence[int] = (100, 300, 1000, 3000),
                threads: int = 4, seed: int = 0) -> List[ScalingPoint]:
    spec = dictionary_spec()
    points: List[ScalingPoint] = []
    for size in sizes:
        trace = scaling_trace(size, threads=threads, seed=seed)

        enum_detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False)
        enum_checks, enum_elapsed = _time_detector(
            enum_detector,
            lambda d: d.register_object("o", dictionary_representation()),
            trace)

        scan_detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.SCAN, keep_reports=False)
        scan_checks, scan_elapsed = _time_detector(
            scan_detector,
            lambda d: d.register_object(
                "o", NaiveRepresentation("dictionary", spec.commutes)),
            trace)

        direct_detector = DirectDetector(root=0, keep_reports=False)
        direct_checks, direct_elapsed = _time_detector(
            direct_detector,
            lambda d: d.register_object("o", spec.commutes),
            trace)

        points.append(ScalingPoint(
            actions=size,
            enumerate_checks_per_action=enum_checks,
            scan_checks_per_action=scan_checks,
            direct_checks_per_action=direct_checks,
            enumerate_seconds=enum_elapsed,
            scan_seconds=scan_elapsed,
            direct_seconds=direct_elapsed,
        ))
    return points


def render_scaling(points: Sequence[ScalingPoint]) -> str:
    headers = ["actions", "enum checks/act", "scan checks/act",
               "direct checks/act", "enum s", "scan s", "direct s"]
    rows = [[p.actions,
             f"{p.enumerate_checks_per_action:.2f}",
             f"{p.scan_checks_per_action:.1f}",
             f"{p.direct_checks_per_action:.1f}",
             f"{p.enumerate_seconds:.4f}",
             f"{p.scan_seconds:.4f}",
             f"{p.direct_seconds:.4f}"] for p in points]
    return render_table(
        headers, rows,
        title=("Section 5.4 scaling: per-action conflict checks — "
               "bounded/ENUMERATE stays Θ(1), SCAN and direct grow Θ(n)"))
