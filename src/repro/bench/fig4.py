"""The Fig. 4 experiment: conflict checks on invocations vs. access points.

Fig. 4's point: with ``k`` concurrent successful ``put`` invocations
followed by one ``size()``, a detector working directly on the logical
specification must check ``size`` against each of the ``k`` puts (``k``
checks), whereas with access points all the puts collapse onto the single
``o:resize`` point and ``size`` performs one bounded conflict lookup.

:func:`run_fig4` builds exactly that scenario for a sweep of ``k`` and
reports the number of conflict checks the final ``size()`` action costs
each detector — the paper's "single conflict check and not three".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.detector import CommutativityRaceDetector, Strategy
from ..core.direct import DirectDetector
from ..core.events import Action, NIL
from ..core.trace import TraceBuilder
from ..specs.dictionary import dictionary_representation, dictionary_spec
from .reporting import render_table

__all__ = ["Fig4Point", "fig4_trace", "run_fig4", "render_fig4"]


@dataclass(frozen=True)
class Fig4Point:
    puts: int
    direct_checks_total: int
    direct_checks_for_size: int
    access_point_checks_total: int
    access_point_checks_for_size: int
    direct_races: int
    access_point_races: int


def fig4_trace(puts: int) -> TraceBuilder:
    """``puts`` threads each inserting a fresh host, then a size() (Fig. 4)."""
    builder = TraceBuilder(root=0)
    for worker in range(1, puts + 1):
        builder.fork(0, worker)
    for worker in range(1, puts + 1):
        builder.action(worker, Action(
            "o", "put", (f"host{worker}.com", f"c{worker}"), (NIL,)))
    # No joinall: size() may happen in parallel with the puts, as in the
    # figure (every put conflicts with the size observation).
    builder.action(0, Action("o", "size", (), (puts,)))
    return builder


def _measure(detector, register, trace) -> tuple:
    register(detector)
    events = list(trace)
    before_last = 0
    for event in events[:-1]:
        detector.process(event)
    before_last = detector.stats.conflict_checks
    detector.process(events[-1])
    total = detector.stats.conflict_checks
    return total, total - before_last, detector.stats.races


def run_fig4(put_counts: Sequence[int] = (3, 10, 30, 100, 300)
             ) -> List[Fig4Point]:
    spec = dictionary_spec()
    points: List[Fig4Point] = []
    for puts in put_counts:
        trace = fig4_trace(puts).build()

        direct = DirectDetector(root=0, keep_reports=False)
        direct_total, direct_size, direct_races = _measure(
            direct, lambda d: d.register_object("o", spec.commutes), trace)

        rd2 = CommutativityRaceDetector(root=0, strategy=Strategy.ENUMERATE,
                                        keep_reports=False)
        rd2_total, rd2_size, rd2_races = _measure(
            rd2,
            lambda d: d.register_object("o", dictionary_representation()),
            trace)

        points.append(Fig4Point(
            puts=puts,
            direct_checks_total=direct_total,
            direct_checks_for_size=direct_size,
            access_point_checks_total=rd2_total,
            access_point_checks_for_size=rd2_size,
            direct_races=direct_races,
            access_point_races=rd2_races,
        ))
    return points


def render_fig4(points: Sequence[Fig4Point]) -> str:
    headers = ["puts k", "direct checks (size)", "access-point checks (size)",
               "direct races", "AP races"]
    rows = [[p.puts, p.direct_checks_for_size,
             p.access_point_checks_for_size, p.direct_races,
             p.access_point_races] for p in points]
    return render_table(
        headers, rows,
        title=("Fig. 4: conflict checks performed by the final size() — "
               "k on invocations vs. O(1) on access points"))
