"""The measurement harness shared by all benchmark drivers.

A *configuration* names an analyzer stack (the columns of Table 2):
``uninstrumented`` runs with an empty monitor — instrumentation sites see
``monitor.enabled == False`` and skip event construction, which is the
closest Python equivalent of running the JVM without RoadRunner.  The other
configurations attach detector analyzers to the same workload code.

:func:`measure` runs a workload callable under one configuration, timing it
and tallying each analyzer's race reports by flavour; the Table 2 driver
assembles rows from these measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.races import (CommutativityRace, DataRace, LocksetWarning,
                          RaceTally, tally)
from ..runtime.analyzers import (Analyzer, DirectAnalyzer, EraserAnalyzer,
                                 FastTrackAnalyzer, NullAnalyzer,
                                 Rd2Analyzer)
from ..runtime.monitor import Monitor

__all__ = ["CONFIGURATIONS", "Measurement", "analyzer_stack", "measure"]


def analyzer_stack(config: str) -> List[Analyzer]:
    """The analyzers attached under a named configuration."""
    if config == "uninstrumented":
        return []
    if config == "fasttrack":
        return [FastTrackAnalyzer()]
    if config == "rd2":
        # The paper notes RoadRunner instruments all memory accesses even
        # when the tool only needs the ConcurrentHashMaps; mirroring that,
        # the RD2 configuration still pays for the low-level event stream
        # (a NullAnalyzer consumes it).
        return [Rd2Analyzer(), NullAnalyzer()]
    if config == "rd2-maps-only":
        # The ablation the paper suggests: "if we only instrumented the
        # ConcurrentHashMaps ... the overhead of RD2 would be lower."
        return [Rd2Analyzer()]
    if config == "eraser":
        return [EraserAnalyzer()]
    if config == "direct":
        return [DirectAnalyzer(), NullAnalyzer()]
    raise ValueError(f"unknown configuration {config!r}")


CONFIGURATIONS: Tuple[str, ...] = ("uninstrumented", "fasttrack", "rd2")
"""The three columns of Table 2."""

#: per-configuration Monitor options (the maps-only ablation turns off
#: memory-access and internal-lock event emission altogether)
_MONITOR_OPTIONS = {
    "rd2-maps-only": {"low_level": False},
}


@dataclass
class Measurement:
    """One (workload, configuration) execution."""

    config: str
    elapsed: float
    operations: int
    commutativity_races: RaceTally
    data_races: RaceTally
    lockset_warnings: RaceTally
    events: int = 0

    @property
    def qps(self) -> float:
        return self.operations / self.elapsed if self.elapsed > 0 else 0.0

    def races_for(self, config: Optional[str] = None) -> RaceTally:
        """The tally that Table 2 reports for this configuration."""
        name = config or self.config
        if name in ("rd2", "rd2-maps-only", "direct"):
            return self.commutativity_races
        if name == "fasttrack":
            return self.data_races
        if name == "eraser":
            return self.lockset_warnings
        return RaceTally(0, 0)


def measure(workload: Callable[[Monitor], int], config: str,
            repeats: int = 1) -> Measurement:
    """Run ``workload`` under ``config``; return the best-of-``repeats``.

    ``workload`` receives a fresh monitor and returns its operation count.
    Races accumulate across repeats only in the *last* run's monitor (each
    repeat gets a fresh monitor, so tallies are per-run as in the paper,
    which reports the races of a single benchmark execution).
    """
    best_elapsed: Optional[float] = None
    last_monitor: Optional[Monitor] = None
    operations = 0
    for _ in range(max(1, repeats)):
        monitor = Monitor(analyzers=analyzer_stack(config),
                          **_MONITOR_OPTIONS.get(config, {}))
        started = time.perf_counter()
        operations = workload(monitor)
        elapsed = time.perf_counter() - started
        if best_elapsed is None or elapsed < best_elapsed:
            best_elapsed = elapsed
        last_monitor = monitor

    commutativity: List[CommutativityRace] = []
    data: List[DataRace] = []
    lockset: List[LocksetWarning] = []
    for report in last_monitor.races():
        if isinstance(report, CommutativityRace):
            commutativity.append(report)
        elif isinstance(report, DataRace):
            data.append(report)
        elif isinstance(report, LocksetWarning):
            lockset.append(report)
    return Measurement(
        config=config,
        elapsed=best_elapsed,
        operations=operations,
        commutativity_races=tally(commutativity),
        data_races=tally(data),
        lockset_warnings=tally(lockset),
        events=last_monitor.events_emitted,
    )
