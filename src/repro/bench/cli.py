"""Command-line front end for all benchmark harnesses.

``repro-bench table2``   — regenerate Table 2 (also: ``repro-table2``).
``repro-bench fig4``     — the Fig. 4 check-count comparison.
``repro-bench scaling``  — the Section 5.4 Θ(1)-vs-Θ(n) series.
``repro-bench ablation`` — optimized vs. raw translation, and RD2 with vs.
                           without low-level instrumentation.
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from .fig4 import render_fig4, run_fig4
from .scaling import render_scaling, run_scaling
from . import table2 as table2_mod

__all__ = ["main"]


def _cmd_table2(args: argparse.Namespace) -> int:
    rows = table2_mod.run_table2(seed=args.seed, repeats=args.repeats,
                                 scale=args.scale)
    print(table2_mod.render(rows, with_paper=not args.no_paper))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    print(render_fig4(run_fig4(tuple(args.puts))))
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    print(render_scaling(run_scaling(tuple(args.sizes))))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .ablation import render_ablations, run_ablations
    print(render_ablations(run_ablations(scale=args.scale)))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark harnesses for the commutativity race "
                    "detection reproduction.")
    sub = parser.add_subparsers(dest="command", required=True)

    p_table2 = sub.add_parser("table2", help="regenerate Table 2")
    p_table2.add_argument("--seed", type=int, default=0)
    p_table2.add_argument("--repeats", type=int, default=1)
    p_table2.add_argument("--scale", type=float, default=1.0)
    p_table2.add_argument("--no-paper", action="store_true")
    p_table2.set_defaults(fn=_cmd_table2)

    p_fig4 = sub.add_parser("fig4", help="Fig. 4 conflict-check comparison")
    p_fig4.add_argument("--puts", type=int, nargs="+",
                        default=[3, 10, 30, 100, 300])
    p_fig4.set_defaults(fn=_cmd_fig4)

    p_scaling = sub.add_parser("scaling",
                               help="Section 5.4 complexity series")
    p_scaling.add_argument("--sizes", type=int, nargs="+",
                           default=[100, 300, 1000, 3000])
    p_scaling.set_defaults(fn=_cmd_scaling)

    p_ablation = sub.add_parser("ablation", help="design-choice ablations")
    p_ablation.add_argument("--scale", type=float, default=0.5)
    p_ablation.set_defaults(fn=_cmd_ablation)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
