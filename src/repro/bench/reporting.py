"""Plain-text table rendering for the benchmark harnesses.

The harness outputs are meant to be read next to the paper's tables, so the
renderer mimics that presentation: left-aligned row labels, right-aligned
measurement columns, and the ``total (distinct)`` race format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_rate", "format_seconds"]


def format_rate(value: float) -> str:
    """Queries-per-second formatting (whole numbers read best)."""
    return f"{value:,.0f} qps"


def format_seconds(value: float) -> str:
    return f"{value:.3f} s"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render rows as an aligned monospace table."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if index == 0:
                parts.append(cell.ljust(widths[index]))
            else:
                parts.append(cell.rjust(widths[index]))
        return "  ".join(parts).rstrip()

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("  ".join("-" * width for width in widths))
    for row in materialized:
        out.append(line(row))
    return "\n".join(out)
