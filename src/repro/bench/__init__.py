"""Benchmark harnesses regenerating the paper's evaluation artifacts:
Table 2, the Fig. 4 check-count comparison, the Section 5.4 complexity
series, and design-choice ablations."""

from .ablation import (AblationRow, adaptive_ablation, atomicity_ablation,
                       instrumentation_ablation, pruning_ablation,
                       render_ablations, run_ablations, strategy_ablation,
                       translation_ablation)
from .fig4 import Fig4Point, fig4_trace, render_fig4, run_fig4
from .harness import CONFIGURATIONS, Measurement, analyzer_stack, measure
from .reporting import format_rate, format_seconds, render_table
from .scaling import ScalingPoint, render_scaling, run_scaling, scaling_trace
from .table2 import PAPER_TABLE2, Row, render, run_row, run_table2

__all__ = [
    "AblationRow", "adaptive_ablation", "atomicity_ablation",
    "instrumentation_ablation", "pruning_ablation", "render_ablations",
    "run_ablations", "strategy_ablation", "translation_ablation",
    "Fig4Point", "fig4_trace", "render_fig4", "run_fig4",
    "CONFIGURATIONS", "Measurement", "analyzer_stack", "measure",
    "format_rate", "format_seconds", "render_table",
    "ScalingPoint", "render_scaling", "run_scaling", "scaling_trace",
    "PAPER_TABLE2", "Row", "render", "run_row", "run_table2",
]
