"""Ablations of the design choices DESIGN.md calls out.

1. **Optimized vs. raw translation** — the Appendix A.3 passes shrink the
   schema table and the per-action touched-point count; both variants are
   equivalent (Definition 4.5), so race verdicts must agree while the
   optimized one does less phase-2 work.
2. **RD2 with vs. without low-level instrumentation** — the paper: "if we
   only instrumented the ConcurrentHashMaps objects and not the basic
   memory locations, the overhead of RD2 would be lower."  The
   ``rd2-maps-only`` configuration quantifies that.
3. **ENUMERATE vs. SCAN on the same representation** — isolates the
   strategy choice from the representation choice (both bounded): SCAN
   pays |active| per point even when Co(pt) is tiny.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Sequence

from ..apps.polepos.circuits import CIRCUITS, CircuitConfig, run_circuit
from ..core.detector import CommutativityRaceDetector, Strategy
from ..logic.translate import build_raw_translation, build_representation, translate
from ..runtime.monitor import Monitor
from ..specs.dictionary import dictionary_spec
from .harness import measure
from .scaling import scaling_trace
from .reporting import render_table
from .table2 import _circuit_workload

__all__ = ["AblationRow", "run_ablations", "render_ablations",
           "translation_ablation", "strategy_ablation",
           "instrumentation_ablation", "adaptive_ablation",
           "pruning_ablation", "atomicity_ablation"]


@dataclass(frozen=True)
class AblationRow:
    experiment: str
    variant: str
    metric: str
    value: str


def translation_ablation(actions: int = 2000) -> List[AblationRow]:
    """Raw vs. optimized translated dictionary representation."""
    spec = dictionary_spec()
    raw = build_representation(build_raw_translation(spec))
    optimized = translate(spec)
    trace = scaling_trace(actions, seed=7)

    rows: List[AblationRow] = []
    results = {}
    for label, representation in (("raw", raw), ("optimized", optimized)):
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False)
        detector.register_object("o", representation)
        started = time.perf_counter()
        for event in trace:
            detector.process(event)
        elapsed = time.perf_counter() - started
        stats = detector.stats
        results[label] = stats.races
        rows.extend([
            AblationRow("translation", label, "schemas",
                        str(len(representation.schemas))),
            AblationRow("translation", label, "points/action",
                        f"{stats.points_touched / stats.actions:.2f}"),
            AblationRow("translation", label, "checks/action",
                        f"{stats.checks_per_action():.2f}"),
            AblationRow("translation", label, "seconds",
                        f"{elapsed:.4f}"),
            AblationRow("translation", label, "races", str(stats.races)),
        ])
    if results["raw"] != results["optimized"]:
        raise AssertionError(
            f"translation ablation broke equivalence: raw found "
            f"{results['raw']} races, optimized {results['optimized']}")
    return rows


def strategy_ablation(actions: int = 2000) -> List[AblationRow]:
    """ENUMERATE vs. SCAN over the *same* bounded representation."""
    trace = scaling_trace(actions, seed=11)
    rows: List[AblationRow] = []
    for strategy in (Strategy.ENUMERATE, Strategy.SCAN):
        detector = CommutativityRaceDetector(root=0, strategy=strategy,
                                             keep_reports=False)
        detector.register_object("o", translate(dictionary_spec()),
                                 strategy=strategy)
        started = time.perf_counter()
        for event in trace:
            detector.process(event)
        elapsed = time.perf_counter() - started
        rows.extend([
            AblationRow("strategy", strategy.value, "checks/action",
                        f"{detector.stats.checks_per_action():.2f}"),
            AblationRow("strategy", strategy.value, "seconds",
                        f"{elapsed:.4f}"),
        ])
    return rows


def instrumentation_ablation(scale: float = 0.5,
                             circuit: str = "ComplexConcurrency"
                             ) -> List[AblationRow]:
    """Full instrumentation vs. maps-only RD2 on a Table 2 circuit."""
    config = CIRCUITS[circuit]
    config = CircuitConfig(**{**config.__dict__,
                              "ops_per_worker":
                              max(1, int(config.ops_per_worker * scale))})
    rows: List[AblationRow] = []
    for variant in ("rd2", "rd2-maps-only"):
        measurement = measure(_circuit_workload(config, 0, 1.0), variant)
        rows.extend([
            AblationRow("instrumentation", variant, "qps",
                        f"{measurement.qps:,.0f}"),
            AblationRow("instrumentation", variant, "races",
                        str(measurement.races_for())),
        ])
    return rows


def adaptive_ablation(actions: int = 3000) -> List[AblationRow]:
    """Epoch-adaptive point clocks vs. plain vector clocks.

    FastTrack's representation insight ported to access points: points
    touched by a single thread keep an O(1) epoch.  Verdicts are identical
    (property-tested); this quantifies the cost difference and how many
    points ever needed promotion on a mostly-thread-local workload.
    """
    from ..specs.dictionary import dictionary_representation
    trace = scaling_trace(actions, seed=5)
    rows: List[AblationRow] = []
    results = {}
    for label, adaptive in (("vector-clocks", False), ("epochs", True)):
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False,
            adaptive=adaptive)
        detector.register_object("o", dictionary_representation())
        started = time.perf_counter()
        for event in trace:
            detector.process(event)
        elapsed = time.perf_counter() - started
        results[label] = detector.stats.races
        rows.append(AblationRow("adaptive-clocks", label, "seconds",
                                f"{elapsed:.4f}"))
        rows.append(AblationRow("adaptive-clocks", label, "races",
                                str(detector.stats.races)))
        if adaptive:
            share = (detector.stats.epoch_promotions
                     / max(1, detector.active_point_count()))
            rows.append(AblationRow("adaptive-clocks", label,
                                    "points promoted",
                                    f"{detector.stats.epoch_promotions} "
                                    f"({share:.0%} of active)"))
    if results["epochs"] != results["vector-clocks"]:
        raise AssertionError("adaptive clocks changed race verdicts")
    return rows


def pruning_ablation(phases: int = 30, workers_per_phase: int = 4
                     ) -> List[AblationRow]:
    """Active-point pruning: memory footprint across fork/join phases.

    The Section 5.3 future-work optimization: with pruning, active sets
    stay bounded by the live concurrent footprint; without it they grow
    with the whole execution history.
    """
    from ..core.trace import TraceBuilder
    from ..core.events import NIL

    builder = TraceBuilder(root=0)
    tid = 1
    for phase in range(phases):
        workers = []
        for worker in range(workers_per_phase):
            builder.fork(0, tid)
            builder.invoke(tid, "o", "put", f"p{phase}w{worker}", tid,
                           returns=NIL)
            workers.append(tid)
            tid += 1
        builder.join_all(0, workers)
    trace = builder.build()

    rows: List[AblationRow] = []
    for label, interval in (("off", 0), ("every-16-actions", 16)):
        detector = CommutativityRaceDetector(
            root=0, strategy=Strategy.ENUMERATE, keep_reports=False,
            prune_interval=interval)
        from ..specs.dictionary import dictionary_representation
        detector.register_object("o", dictionary_representation())
        started = time.perf_counter()
        for event in trace:
            detector.process(event)
        elapsed = time.perf_counter() - started
        rows.extend([
            AblationRow("pruning", label, "active points at end",
                        str(detector.active_point_count())),
            AblationRow("pruning", label, "races",
                        str(detector.stats.races)),
            AblationRow("pruning", label, "seconds", f"{elapsed:.4f}"),
        ])
    return rows


def atomicity_ablation(seeds: Sequence[int] = range(8)) -> List[AblationRow]:
    """Atomicity conflicts: access points vs. read/write (Section 8).

    Runs a fee-and-deposit workload (atomic double increments with
    interleaved deposits — all commuting) plus a genuinely broken
    check-then-act block, under both conflict modes, and counts flagged
    runs.  Read/write conflicts false-alarm on the commuting workload;
    access-point conflicts flag only the broken one.
    """
    from ..atomicity import AtomicityChecker, ConflictMode, atomic
    from ..runtime.collections_rt import MonitoredCounter, MonitoredDict
    from ..sched.scheduler import Scheduler
    from ..specs.counter import counter_representation
    from ..specs.dictionary import dictionary_representation

    def run_commuting(seed: int):
        monitor = Monitor(record_trace=True)
        scheduler = Scheduler(monitor, seed=seed)

        def main():
            balance = MonitoredCounter(monitor, name="balance")

            def teller():
                with atomic(monitor):
                    balance.add(-2)
                    balance.add(-1)

            def depositor():
                balance.add(100)

            scheduler.join_all([scheduler.spawn(teller),
                                scheduler.spawn(depositor),
                                scheduler.spawn(teller)])

        scheduler.run(main)
        return monitor.trace

    def run_broken(seed: int):
        monitor = Monitor(record_trace=True)
        scheduler = Scheduler(monitor, seed=seed)

        def main():
            table = MonitoredDict(monitor, name="accounts")

            def transactional():
                with atomic(monitor):
                    current = table.get("acct")
                    table.put("acct", (current, "new"))

            def intruder():
                table.put("acct", "intrusion")

            scheduler.join_all([scheduler.spawn(transactional),
                                scheduler.spawn(intruder),
                                scheduler.spawn(transactional)])

        scheduler.run(main)
        return monitor.trace

    def flag_rate(traces, mode, registrations):
        flagged = 0
        for trace in traces:
            checker = AtomicityChecker(mode)
            for obj, representation in registrations:
                checker.register_object(obj, representation)
            if not checker.analyze(trace).serializable:
                flagged += 1
        return flagged

    commuting = [run_commuting(seed) for seed in seeds]
    broken = [run_broken(seed) for seed in seeds]
    total = len(list(seeds))

    rows: List[AblationRow] = []
    for mode, label in ((ConflictMode.COMMUTATIVITY, "access-points"),
                        (ConflictMode.READ_WRITE, "read-write")):
        benign = flag_rate(commuting, mode,
                           [("balance", counter_representation())])
        harmful = flag_rate(broken, mode,
                            [("accounts", dictionary_representation())])
        rows.extend([
            AblationRow("atomicity", label,
                        f"flagged commuting runs (of {total})",
                        str(benign)),
            AblationRow("atomicity", label,
                        f"flagged broken runs (of {total})",
                        str(harmful)),
        ])
    return rows


def run_ablations(scale: float = 0.5) -> List[AblationRow]:
    rows: List[AblationRow] = []
    rows.extend(translation_ablation())
    rows.extend(strategy_ablation())
    rows.extend(instrumentation_ablation(scale=scale))
    rows.extend(adaptive_ablation())
    rows.extend(pruning_ablation())
    rows.extend(atomicity_ablation())
    return rows


def render_ablations(rows: Sequence[AblationRow]) -> str:
    return render_table(
        ["experiment", "variant", "metric", "value"],
        [[r.experiment, r.variant, r.metric, r.value] for r in rows],
        title="Design-choice ablations")
