"""PolePosition-style benchmark circuits driving the MVStore database."""

from .circuits import (CIRCUITS, CircuitConfig, CircuitResult, circuit_names,
                       get_circuit, run_circuit)

__all__ = ["CIRCUITS", "CircuitConfig", "CircuitResult", "circuit_names",
           "get_circuit", "run_circuit"]
