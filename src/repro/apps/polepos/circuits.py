"""PolePosition circuits: the benchmark scenarios of Table 2.

PolePosition is the open-source database benchmark the paper drives H2
with; its scenarios are called *circuits*.  The paper runs five against the
MVStore build (plus a variant of the first with an alternate query
distribution):

* **ComplexConcurrency** — several connections issuing a mixed statement
  stream (selects, inserts, updates, commits, multi-row queries) over a
  small shared key space.  Both MVStore bookkeeping races are reachable.
* **ComplexConcurrency (alternate query distribution)** — same shape,
  shifted toward reads.
* **QueryCentricConcurrency** — concurrent connections, but read-only over
  a pre-populated (and chunk-warmed) table.  Reads commute: RD2 stays
  silent while the low-level detectors still flag the server's statistics
  fields, matching the paper's ``209 (4)`` vs ``0 (0)`` row.
* **InsertCentricConcurrency** — insert-heavy with occasional re-inserts
  (duplicate keys) and updates.
* **Complex** and **NestedLists** — no concurrent *queries*: a single
  client thread does the work while a background statistics thread reads
  the server's plain counters (so the read/write baselines still find
  field races but no library-level interference exists).

Each circuit is a :class:`CircuitConfig`; :func:`run_circuit` executes one
under a given monitor/scheduler seed and returns operation counts, which
the bench harness converts to qps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...runtime.monitor import Monitor
from ...sched.scheduler import Scheduler
from ..mvstore.database import Database, Session

__all__ = ["CircuitConfig", "CircuitResult", "CIRCUITS", "circuit_names",
           "get_circuit", "run_circuit"]


@dataclass(frozen=True)
class CircuitConfig:
    """Parameters of one PolePosition-style circuit."""

    name: str
    workers: int = 4
    ops_per_worker: int = 120
    key_space: int = 24
    tables: Tuple[str, ...] = ("t0",)
    #: statement mix: weights over select/insert/update/range/count/commit
    mix: Tuple[Tuple[str, float], ...] = (
        ("select", 0.4), ("insert", 0.3), ("update", 0.2), ("commit", 0.1))
    #: keys per worker are private (suffix by worker id) when True
    private_keys: bool = False
    #: pre-populate the table and warm the chunk cache before forking
    prepopulate: int = 0
    #: fork a background statistics reader alongside the workers
    stats_thread: bool = False
    range_span: int = 6
    chunk_count: int = 8

    def weights(self) -> Tuple[List[str], List[float]]:
        ops = [op for op, _ in self.mix]
        weights = [weight for _, weight in self.mix]
        return ops, weights


@dataclass
class CircuitResult:
    """What one circuit run did (used for qps and race accounting)."""

    config: CircuitConfig
    operations: int = 0
    duplicate_inserts: int = 0
    rows_returned: int = 0
    commits: int = 0
    final_counts: Dict[str, int] = field(default_factory=dict)


def _worker_body(session: Session, config: CircuitConfig, worker: int,
                 seed: int, result: CircuitResult) -> None:
    """One connection's statement stream (a PolePosition "driver lap")."""
    rng = random.Random(f"{seed}/worker/{worker}")
    ops, weights = config.weights()
    for op_index in range(config.ops_per_worker):
        table = config.tables[rng.randrange(len(config.tables))]
        if config.private_keys:
            key = f"w{worker}k{rng.randrange(config.key_space)}"
        else:
            key = f"k{rng.randrange(config.key_space)}"
        op = rng.choices(ops, weights)[0]
        if op == "select":
            row = session.select(table, key)
            if row is not None:
                result.rows_returned += 1
        elif op == "insert":
            fresh = session.insert(table, key, (key, worker, op_index))
            if not fresh:
                result.duplicate_inserts += 1
        elif op == "update":
            session.update(table, key, (key, worker, -op_index))
        elif op == "range":
            start = rng.randrange(config.key_space)
            keys = [f"k{(start + offset) % config.key_space}"
                    for offset in range(config.range_span)]
            result.rows_returned += len(session.select_range(table, keys))
        elif op == "count":
            session.count(table)
        elif op == "commit":
            session.commit()
            result.commits += 1
        else:
            raise ValueError(f"unknown statement kind {op!r}")
        result.operations += 1


def _stats_body(database: Database, rounds: int) -> None:
    """A background monitoring thread reading plain server counters.

    This mirrors H2's unsynchronized statistics: the reads race with the
    workers' writes at the field level (FASTTRACK reports them) but touch
    no monitored collection (RD2 does not care).
    """
    observed = 0
    for _ in range(rounds):
        observed += database.statements_executed.read()
        observed += database.rows_read.read()
        observed += database.store.unsaved_memory.read()


def run_circuit(config: CircuitConfig, monitor: Monitor,
                seed: int = 0,
                switch_probability: float = 1.0) -> CircuitResult:
    """Execute one circuit under a fresh scheduler; returns its result."""
    scheduler = Scheduler(monitor, seed=seed,
                          switch_probability=switch_probability)
    database = Database(monitor, chunk_count=config.chunk_count,
                        name=f"h2/{config.name}/{seed}")
    database.bind_scheduler(scheduler)
    result = CircuitResult(config=config)

    def main() -> None:
        setup = database.connect()
        for index in range(config.prepopulate):
            for table in config.tables:
                setup.insert(table, f"k{index % config.key_space}",
                             ("seed", index))
        if config.prepopulate:
            # Warm the chunk cache so read-only circuits do not rebuild
            # chunk metadata concurrently (H2 reaches steady state the
            # same way during benchmark ramp-up).
            for index in range(config.key_space):
                for table in config.tables:
                    setup.select(table, f"k{index}")

        handles = []
        for worker in range(config.workers):
            session = database.connect()
            handles.append(scheduler.spawn(
                _worker_body, session, config, worker, seed, result))
        if config.stats_thread:
            handles.append(scheduler.spawn(
                _stats_body, database,
                config.ops_per_worker * max(1, config.workers) // 4))
        scheduler.join_all(handles)
        for table in config.tables:
            result.final_counts[table] = setup.count(table)

    scheduler.run(main)
    return result


# -- the Table 2 circuit catalog ----------------------------------------------------

def _complex_concurrency() -> CircuitConfig:
    return CircuitConfig(
        name="ComplexConcurrency",
        workers=4, ops_per_worker=120, key_space=24,
        mix=(("select", 0.30), ("insert", 0.22), ("update", 0.22),
             ("range", 0.10), ("count", 0.06), ("commit", 0.10)),
        prepopulate=12,
    )


def _complex_concurrency_alt() -> CircuitConfig:
    return CircuitConfig(
        name="ComplexConcurrency-alt",
        workers=4, ops_per_worker=120, key_space=24,
        mix=(("select", 0.52), ("insert", 0.12), ("update", 0.12),
             ("range", 0.14), ("count", 0.04), ("commit", 0.06)),
        prepopulate=12,
    )


def _query_centric() -> CircuitConfig:
    return CircuitConfig(
        name="QueryCentricConcurrency",
        workers=4, ops_per_worker=150, key_space=24,
        mix=(("select", 0.80), ("range", 0.20)),
        prepopulate=24,
        stats_thread=True,
    )


def _insert_centric() -> CircuitConfig:
    return CircuitConfig(
        name="InsertCentricConcurrency",
        workers=4, ops_per_worker=150, key_space=48,
        mix=(("insert", 0.78), ("update", 0.10), ("select", 0.06),
             ("commit", 0.06)),
        prepopulate=0,
        # Each connection inserts its own rows (as PolePosition does), so
        # the table map itself is collision-free; the races come from the
        # store's shared chunk bookkeeping, as in the paper's H2 findings.
        private_keys=True,
    )


def _complex_single() -> CircuitConfig:
    return CircuitConfig(
        name="Complex",
        workers=1, ops_per_worker=400, key_space=32,
        mix=(("select", 0.25), ("insert", 0.20), ("update", 0.20),
             ("range", 0.25), ("count", 0.05), ("commit", 0.05)),
        prepopulate=16,
        stats_thread=True,
    )


def _nested_lists() -> CircuitConfig:
    return CircuitConfig(
        name="NestedLists",
        workers=1, ops_per_worker=400, key_space=16,
        tables=("outer", "inner0", "inner1"),
        mix=(("insert", 0.40), ("select", 0.30), ("range", 0.20),
             ("update", 0.10)),
        prepopulate=8,
        stats_thread=True,
    )


CIRCUITS: Dict[str, CircuitConfig] = {
    config.name: config
    for config in (
        _complex_concurrency(),
        _complex_concurrency_alt(),
        _query_centric(),
        _insert_centric(),
        _complex_single(),
        _nested_lists(),
    )
}


def circuit_names() -> List[str]:
    return list(CIRCUITS)


def get_circuit(name: str) -> CircuitConfig:
    try:
        return CIRCUITS[name]
    except KeyError:
        raise KeyError(
            f"unknown circuit {name!r}; available: {circuit_names()}"
        ) from None
