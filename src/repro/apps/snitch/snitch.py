"""Cassandra's DynamicEndpointSnitch (the paper's third application).

Cassandra ranks replica nodes by observed latency.  The
``DynamicEndpointSnitch`` component accumulates per-host latency samples in
a ConcurrentHashMap (``samples``) as reads complete, and a periodic task
recalculates per-host scores from those samples.  The paper's reported bug:

    "New entries to the ``samples`` map ... could be added while its size
    is concurrently used as a performance hint during node rank
    recalculation, causing the performance hint to become obsolete."

This module reproduces the component: producer threads fold latencies into
``samples`` with a get-then-put (put/put and put/get commutativity races
between producers on a hot host), the updater reads ``samples.size()`` as
its capacity hint (size vs. resize races — the reported bug) and publishes
into ``scores``, which producers consult for routing (get vs. put races on
``scores``).  Plain counters (`updates_since_reset`, `rank_generation`)
feed the read/write baselines.

The paper benchmarks this as a timed test case (seconds, not qps); the
harness follows suit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...core.events import NIL
from ...runtime.collections_rt import MonitoredDict
from ...runtime.monitor import Monitor
from ...runtime.shared import SharedVar
from ...sched.scheduler import Scheduler

__all__ = ["DynamicEndpointSnitch", "SnitchTestConfig", "SnitchResult",
           "run_snitch_test"]


class DynamicEndpointSnitch:
    """Latency-based node ranking with the paper's racy access patterns."""

    WINDOW = 16  # samples kept per host (Cassandra keeps a bounded window)

    def __init__(self, monitor: Monitor, hosts: List[str],
                 name: str = "snitch"):
        self.monitor = monitor
        self.hosts = list(hosts)
        #: host -> (sample_count, latency_sum) — the paper's ``samples`` map
        self.samples = MonitoredDict(monitor, name=f"{name}/samples")
        #: host -> score published by the updater
        self.scores = MonitoredDict(monitor, name=f"{name}/scores")
        self.updates_since_reset = SharedVar(monitor, 0,
                                             name=f"{name}/updateCount")
        self.rank_generation = SharedVar(monitor, 0,
                                         name=f"{name}/rankGeneration")

    # -- producer path (reads completing on client threads) -----------------

    def receive_timing(self, host: str, latency_ms: float) -> None:
        """Fold one latency sample in — Cassandra's receiveTiming.

        The get-then-put is unsynchronized exactly like the original's
        ``AdaptiveLatencyTracker`` registration path.
        """
        current = self.samples.get(host)                    # racy read
        if current is NIL:
            count, total = 0, 0.0
        else:
            count, total = current
        if count >= self.WINDOW:
            count, total = count // 2, total / 2            # decay window
        self.samples.put(host, (count + 1, total + latency_ms))  # racy write
        self.updates_since_reset.add(1)

    def best_endpoint(self) -> Optional[str]:
        """Pick the currently best-ranked host (producers route with it)."""
        best_host, best_score = None, None
        for host in self.hosts:
            score = self.scores.get(host)                   # races w/ updater
            if score is NIL:
                continue
            if best_score is None or score < best_score:
                best_host, best_score = host, score
        return best_host

    # -- updater path (the periodic rank recalculation) -------------------------

    def update_scores(self) -> int:
        """Recalculate all scores — Cassandra's updateScores.

        ``samples.size()`` is the "performance hint" of the reported bug:
        it sizes the score table while producers concurrently add hosts,
        so the hint can be stale by the time the scores are published.
        """
        hint = self.samples.size()                          # the buggy hint
        self.rank_generation.add(1)
        published = 0
        for host in self.hosts:
            data = self.samples.get(host)
            if data is NIL:
                continue
            count, total = data
            if count == 0:
                continue
            self.scores.put(host, total / count)            # races w/ readers
            published += 1
        return hint


@dataclass(frozen=True)
class SnitchTestConfig:
    """Parameters of the DynamicEndpointSnitch test (Table 2's last row)."""

    hosts: Tuple[str, ...] = ("10.0.0.1", "10.0.0.2", "10.0.0.3",
                              "10.0.0.4")
    producers: int = 3
    timings_per_producer: int = 150
    score_updates: int = 40
    #: producers consult the ranking every this many timings
    route_every: int = 5


@dataclass
class SnitchResult:
    config: SnitchTestConfig
    timings: int = 0
    score_rounds: int = 0
    stale_hints: int = 0
    final_scores: Dict[str, float] = field(default_factory=dict)


def _producer_body(snitch: DynamicEndpointSnitch, config: SnitchTestConfig,
                   producer: int, seed: int, result: SnitchResult) -> None:
    rng = random.Random(f"{seed}/producer/{producer}")
    for index in range(config.timings_per_producer):
        # Hot-spot the first host so producers collide on its samples entry,
        # like a primary replica absorbing most reads.
        if rng.random() < 0.5:
            host = snitch.hosts[0]
        else:
            host = rng.choice(snitch.hosts)
        snitch.receive_timing(host, latency_ms=1.0 + rng.random() * 9.0)
        result.timings += 1
        if index % config.route_every == 0:
            snitch.best_endpoint()


def _updater_body(snitch: DynamicEndpointSnitch, config: SnitchTestConfig,
                  result: SnitchResult) -> None:
    for _ in range(config.score_updates):
        hint = snitch.update_scores()
        result.score_rounds += 1
        if hint != snitch.samples.size():
            result.stale_hints += 1


def run_snitch_test(config: SnitchTestConfig, monitor: Monitor,
                    seed: int = 0,
                    switch_probability: float = 1.0) -> SnitchResult:
    """The DynamicEndpointSnitch test: simulate changing node latencies."""
    scheduler = Scheduler(monitor, seed=seed,
                          switch_probability=switch_probability)
    result = SnitchResult(config=config)

    def main() -> None:
        snitch = DynamicEndpointSnitch(monitor, list(config.hosts))
        handles = [
            scheduler.spawn(_producer_body, snitch, config, producer, seed,
                            result)
            for producer in range(config.producers)
        ]
        handles.append(scheduler.spawn(_updater_body, snitch, config,
                                       result))
        scheduler.join_all(handles)
        snitch.update_scores()
        for host in config.hosts:
            score = snitch.scores.get(host)
            if score is not NIL:
                result.final_scores[host] = score

    scheduler.run(main)
    return result
