"""Cassandra DynamicEndpointSnitch substitute."""

from .snitch import (DynamicEndpointSnitch, SnitchResult, SnitchTestConfig,
                     run_snitch_test)

__all__ = ["DynamicEndpointSnitch", "SnitchResult", "SnitchTestConfig",
           "run_snitch_test"]
