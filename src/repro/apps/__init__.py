"""Evaluation applications: the H2-MVStore database with PolePosition-style
circuits, and Cassandra's DynamicEndpointSnitch (Section 7 substitutes)."""

from . import mvstore, polepos, snitch

__all__ = ["mvstore", "polepos", "snitch"]
