"""H2-MVStore substitute: the multi-version store with the paper's two
racy bookkeeping maps, plus a miniature database layer over it."""

from .database import Database, Session
from .store import MVMap, MVStore, PAGE_SIZE

__all__ = ["Database", "Session", "MVMap", "MVStore", "PAGE_SIZE"]
