"""A Multi-Version Store modeled on H2's MVStore (the paper's Section 7).

H2 1.3.174's MVStore keeps its bookkeeping in ConcurrentHashMaps; the paper
reports two harmful commutativity races found by RD2 in it:

1. **freedPageSpace** — concurrent accumulation of freed page space uses a
   get-then-put sequence on the ``freedPageSpace`` map without holding the
   store lock, so two threads freeing pages of the same chunk can lose an
   update ("could lead to incorrect state of the server"; fixed upstream
   after the paper's study).
2. **chunks** — readers materialize chunk metadata on demand with a
   contains-then-put on the ``chunks`` map, so two readers can both load
   the same chunk ("the same result being computed multiple times, which
   might be a performance issue").

This module reproduces those exact access patterns on monitored
dictionaries.  The store is versioned: ``commit`` bumps the version under
the store lock (a correctly synchronized path, providing contrast), while
the buggy paths deliberately bypass it, as in H2.

The store also carries a handful of *plain* shared fields (`unsaved_memory`,
`cache_hits`, ...) updated without synchronization — the kind of benign-ish
field races RoadRunner's FASTTRACK floods Table 2 with.
"""

from __future__ import annotations

import itertools
import zlib
from typing import Any, Dict, Hashable, Optional

from ...core.events import NIL
from ...runtime.collections_rt import MonitoredDict
from ...runtime.monitor import Monitor
from ...runtime.shared import MonitoredLock, SharedVar

__all__ = ["PAGE_SIZE", "MVStore", "MVMap"]

PAGE_SIZE = 64

_store_serial = itertools.count()


class MVMap:
    """A named key-value map inside the store (H2's MVMap).

    Application rows live here; structural bookkeeping (which chunk a write
    landed in, what space it freed) is delegated back to the store, which is
    where the racy paths are.
    """

    def __init__(self, store: "MVStore", name: str):
        self._store = store
        self.name = name
        self._data = MonitoredDict(store.monitor,
                                   name=f"{store.store_id}/map/{name}")

    def put(self, key: Hashable, value: Any) -> Any:
        previous = self._data.put(key, value)
        # A write dirties a page; replacing an existing row frees the old
        # page's space in its chunk — the freedPageSpace path.
        self._store.on_page_write(self.name, key, replaced=previous is not NIL)
        return previous

    def get(self, key: Hashable) -> Any:
        # A read may need the chunk holding the page — the chunks path.
        self._store.on_page_read(self.name, key)
        return self._data.get(key)

    def remove(self, key: Hashable) -> Any:
        previous = self._data.remove(key)
        if previous is not NIL:
            self._store.on_page_write(self.name, key, replaced=True)
        return previous

    def contains(self, key: Hashable) -> bool:
        return self._data.contains(key)

    def size(self) -> int:
        return self._data.size()

    def release(self) -> None:
        self._data.release()


class MVStore:
    """The store: chunk registry, freed-space accounting, versioning.

    Parameters
    ----------
    monitor:
        Event hub for all the store's shared state.
    chunk_count:
        How many chunks the key space folds onto; a smaller count means
        more collisions on ``freedPageSpace``/``chunks`` entries and hence
        more races per operation.
    """

    def __init__(self, monitor: Monitor, chunk_count: int = 8,
                 name: Optional[str] = None):
        self.monitor = monitor
        self.store_id = name if name is not None else f"mvstore#{next(_store_serial)}"
        self.chunk_count = chunk_count

        # The two maps the paper's H2 bugs live on.
        self.chunks = MonitoredDict(monitor, name=f"{self.store_id}/chunks")
        self.freed_page_space = MonitoredDict(
            monitor, name=f"{self.store_id}/freedPageSpace")

        # Correctly synchronized commit path.
        self.store_lock = MonitoredLock(monitor,
                                        name=f"{self.store_id}/storeLock")

        # Plain fields — FASTTRACK's hunting ground.
        self.current_version = SharedVar(monitor, 0,
                                         name=f"{self.store_id}/currentVersion")
        self.unsaved_memory = SharedVar(monitor, 0,
                                        name=f"{self.store_id}/unsavedMemory")
        self.cache_hits = SharedVar(monitor, 0,
                                    name=f"{self.store_id}/cacheHits")
        self.chunk_loads = SharedVar(monitor, 0,
                                     name=f"{self.store_id}/chunkLoads")

        self._maps: Dict[str, MVMap] = {}

    def bind_scheduler(self, scheduler) -> None:
        """Route the store lock's blocking through the scheduler."""
        self.store_lock.bind_scheduler(scheduler)

    # -- maps ----------------------------------------------------------------

    def open_map(self, name: str) -> MVMap:
        mv_map = self._maps.get(name)
        if mv_map is None:
            mv_map = MVMap(self, name)
            self._maps[name] = mv_map
        return mv_map

    # -- page bookkeeping (the racy paths) ---------------------------------------

    def chunk_of(self, map_name: str, key: Hashable) -> int:
        # Deterministic across processes (unlike str.__hash__, which is
        # randomized per interpreter) so benchmark runs are reproducible.
        digest = zlib.crc32(repr((map_name, key)).encode())
        return digest % self.chunk_count

    def on_page_write(self, map_name: str, key: Hashable,
                      replaced: bool) -> None:
        """A page was (re)written: account memory; free replaced space.

        The freed-space accumulation is H2 bug 1: a get-then-put on
        ``freedPageSpace`` with no lock — two concurrent replacements in
        the same chunk race on the entry (RD2: put/put and put/get
        commutativity races) and one update can be lost.
        """
        self.unsaved_memory.add(PAGE_SIZE)
        if not replaced:
            return
        chunk = self.chunk_of(map_name, key)
        # The replaced page's chunk metadata is stale: drop it, so the next
        # reader re-materializes it (and the contains-then-put of
        # on_page_read can race again).
        self.chunks.remove(chunk)
        freed = self.freed_page_space.get(chunk)        # racy read
        if freed is NIL:
            freed = 0
        self.freed_page_space.put(chunk, freed + PAGE_SIZE)  # racy write

    def on_page_read(self, map_name: str, key: Hashable) -> None:
        """A page was read: make sure its chunk metadata is materialized.

        H2 bug 2: a contains-then-put on ``chunks`` — two concurrent
        readers both miss, both load, and both publish; the duplicated
        ``_load_chunk`` work is the performance issue the paper describes.
        """
        chunk = self.chunk_of(map_name, key)
        if not self.chunks.contains(chunk):             # racy check
            metadata = self._load_chunk(chunk)
            self.chunk_loads.add(1)
            self.chunks.put(chunk, metadata)            # racy act
        else:
            self.cache_hits.add(1)

    def _load_chunk(self, chunk: int) -> Dict[str, int]:
        # Stands in for H2's expensive chunk deserialization.
        return {"id": chunk, "pages": PAGE_SIZE, "version":
                self.current_version.read()}

    # -- commit (the synchronized path) ---------------------------------------------

    def commit(self) -> int:
        """Persist pending writes and advance the version.

        Runs under the store lock, so concurrent commits are ordered —
        their freed-space *consumption* is race-free.  (The bug is that the
        freeing *producers* above do not take this lock.)
        """
        with self.store_lock:
            version = self.current_version.read() + 1
            self.current_version.write(version)
            chunk = version % self.chunk_count
            consumed = self.freed_page_space.get(chunk)
            if consumed is not NIL and consumed > 0:
                self.freed_page_space.put(chunk, 0)
            self.unsaved_memory.write(0)
            return version

    # -- lifecycle -------------------------------------------------------------------

    def close(self) -> None:
        """Release analyzer state for all store objects (Section 5.3)."""
        for mv_map in self._maps.values():
            mv_map.release()
        self.chunks.release()
        self.freed_page_space.release()
