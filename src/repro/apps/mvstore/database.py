"""A miniature SQL-ish database server on top of the MVStore.

H2 exposes JDBC; PolePosition drives it with inserts, selects, updates and
multi-row "complex" queries.  This layer provides just enough of that
surface for the circuits: named tables backed by MVMaps, per-connection
sessions, and the handful of statement shapes the circuits issue.

Rows are flat tuples; the key is the primary key.  A "complex query" walks
a key range, which at the store level is a sequence of gets — reads commute,
so query-heavy circuits are commutativity-quiet even when racy at the field
level, matching Table 2's QueryCentricConcurrency row (FASTTRACK: hundreds
of races; RD2: zero).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterable, List, Optional, Tuple

from ...core.events import NIL
from ...runtime.monitor import Monitor
from ...runtime.shared import SharedVar
from .store import MVStore

__all__ = ["Database", "Session"]


class Database:
    """The server: one MVStore plus server-wide statistics fields."""

    def __init__(self, monitor: Monitor, chunk_count: int = 8,
                 name: str = "h2"):
        self.monitor = monitor
        self.store = MVStore(monitor, chunk_count=chunk_count, name=name)
        # Unsynchronized server statistics — FASTTRACK fodder, like H2's
        # query statistics counters.
        self.statements_executed = SharedVar(monitor, 0,
                                             name=f"{name}/stmtCount")
        self.rows_read = SharedVar(monitor, 0, name=f"{name}/rowsRead")

    def bind_scheduler(self, scheduler) -> None:
        self.store.bind_scheduler(scheduler)

    def connect(self) -> "Session":
        return Session(self)

    def close(self) -> None:
        self.store.close()


class Session:
    """A client connection issuing statements against the server."""

    def __init__(self, database: Database):
        self._db = database
        self._store = database.store

    # -- statements --------------------------------------------------------

    def insert(self, table: str, key: Any, row: Tuple[Any, ...]) -> bool:
        """INSERT; returns False when the key already existed (H2 would
        raise a duplicate-key error — the circuits count it instead)."""
        self._db.statements_executed.add(1)
        previous = self._store.open_map(table).put(key, row)
        return previous is NIL

    def select(self, table: str, key: Any) -> Optional[Tuple[Any, ...]]:
        """SELECT by primary key; None when absent."""
        self._db.statements_executed.add(1)
        self._db.rows_read.add(1)
        row = self._store.open_map(table).get(key)
        return None if row is NIL else row

    def update(self, table: str, key: Any,
               row: Tuple[Any, ...]) -> bool:
        """UPDATE; returns False when the key was absent (row inserted)."""
        self._db.statements_executed.add(1)
        previous = self._store.open_map(table).put(key, row)
        return previous is not NIL

    def delete(self, table: str, key: Any) -> bool:
        self._db.statements_executed.add(1)
        return self._store.open_map(table).remove(key) is not NIL

    def select_range(self, table: str, keys: Iterable[Any]
                     ) -> List[Tuple[Any, ...]]:
        """A "complex" multi-row query: one get per candidate key."""
        self._db.statements_executed.add(1)
        mv_map = self._store.open_map(table)
        rows: List[Tuple[Any, ...]] = []
        for key in keys:
            self._db.rows_read.add(1)
            row = mv_map.get(key)
            if row is not NIL:
                rows.append(row)
        return rows

    def count(self, table: str) -> int:
        """SELECT COUNT(*) — a size observation on the table map."""
        self._db.statements_executed.add(1)
        return self._store.open_map(table).size()

    def commit(self) -> int:
        return self._store.commit()

    @contextmanager
    def transaction(self):
        """Mark a statement sequence as intended-atomic.

        Purely an annotation for the atomicity analysis
        (:mod:`repro.atomicity`): no isolation is enforced — H2's MVStore
        sessions likewise interleave at the map level, which is exactly
        what the checker then examines.
        """
        self._db.monitor.on_begin()
        try:
            yield self
        finally:
            self._db.monitor.on_commit()
