"""Synchronous clients for the detection daemon, plus a test harness.

The ingest protocol was designed so a client needs exactly one behavior
— connect, stream everything from event zero, reconnect on error — and
:class:`ServiceClient` is that client: a blocking socket wrapper the
test-suite, the chaos harness and the soak benchmark all drive.  It is
deliberately *not* asyncio: real monitored applications write traces
from ordinary threads, and the daemon's backpressure story ("a slow
consumer blocks the client's socket, nothing else") is only honest if
the reference client really does block.

:class:`ControlClient` speaks the control socket (``STATUS`` / ``STATS``
/ ``RACES`` / ``SHUTDOWN``), reading each response through its ``.``
terminator.

:class:`ServerThread` hosts a :class:`~repro.service.server.
DetectionServer` on a private event loop in a daemon thread — the
test-suite's way to get a live server and a same-process view of its
registries at once.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from .protocol import END_OF_RESPONSE, encode_hello
from .server import DetectionServer, ServiceConfig

__all__ = ["StreamResult", "ServiceClient", "ControlClient", "ServerThread"]

_DEFAULT_TIMEOUT = 30.0


@dataclass
class StreamResult:
    """How one ingest connection ended."""

    #: The server's handshake ack line ("OK NEW" / "OK RESUME n"), or the
    #: ERR line when the handshake itself was refused.
    ack: str
    #: "done" | "refused" | "error" | "disconnected"
    status: str
    #: The final server line ("DONE n" / "ERR ..."), "" on silent close.
    final: str
    #: Race-report count from a DONE line, else None.
    races: Optional[int] = None

    @property
    def resumed(self) -> int:
        """Events the server fast-forwarded (0 for a fresh analysis)."""
        if self.ack.startswith("OK RESUME "):
            return int(self.ack.rsplit(" ", 1)[1])
        return 0


class ServiceClient:
    """One tenant's blocking ingest connection (see module docstring)."""

    def __init__(self, socket_path: str, timeout: float = _DEFAULT_TIMEOUT):
        self._path = socket_path
        self._timeout = timeout

    def _connect(self) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        sock.connect(self._path)
        return sock

    def stream_text(self, tenant: str, bindings: Dict[str, str],
                    trace_text: str,
                    truncate_at: Optional[int] = None,
                    via_shm: bool = False,
                    ring_capacity: int = 1 << 20) -> StreamResult:
        """Stream one tenant's whole JSONL trace; blocks until the ack.

        ``truncate_at`` is the chaos harness's torn-frame lever: only the
        first that many *bytes* of the trace are sent (typically cutting
        a record in half) and the connection then ends abruptly, like a
        client killed mid-write.

        ``via_shm`` routes the trace bytes through a client-owned
        shared-memory :class:`~repro.core.shmem.ByteRing` named in the
        handshake — the socket carries only handshake, ack, and the
        final status line.  The backpressure contract is unchanged: a
        full ring blocks this call exactly like a full socket buffer.
        """
        ring = None
        if via_shm:
            from ..core.shmem import ByteRing
            ring = ByteRing.create(capacity=ring_capacity)
        sock = self._connect()
        try:
            reader = sock.makefile("rb")
            shm_name = ring.name if ring is not None else None
            sock.sendall((encode_hello(tenant, bindings, shm=shm_name) + "\n")
                         .encode("utf-8"))
            ack = reader.readline().decode("utf-8").rstrip("\n")
            if not ack.startswith("OK"):
                return StreamResult(ack=ack, status="refused", final=ack)
            payload = trace_text.encode("utf-8")
            if truncate_at is not None:
                if ring is not None:
                    ring.write_all(payload[:truncate_at],
                                   timeout=self._timeout)
                    ring.close_write()
                else:
                    sock.sendall(payload[:truncate_at])
                return StreamResult(ack=ack, status="disconnected", final="")
            try:
                if ring is not None:
                    ring.write_all(payload, timeout=self._timeout)
                    ring.close_write()
                else:
                    sock.sendall(payload)
            except (BrokenPipeError, ConnectionError):
                # The server refused mid-stream (quarantine, budget); its
                # parting ERR line is still in the read buffer.
                pass
            final = reader.readline().decode("utf-8").rstrip("\n")
            if final.startswith("DONE "):
                return StreamResult(ack=ack, status="done", final=final,
                                    races=int(final.rsplit(" ", 1)[1]))
            status = "error" if final else "disconnected"
            return StreamResult(ack=ack, status=status, final=final)
        finally:
            try:
                sock.close()
            except OSError:
                pass
            if ring is not None:
                ring.close()
                ring.unlink()

    def stream_until_done(self, tenant: str, bindings: Dict[str, str],
                          trace_text: str, attempts: int = 12,
                          backoff: float = 0.05) -> List[StreamResult]:
        """The dumb-client loop: reconnect until DONE or refusal sticks.

        Retries transparently on the transient endings a real client
        would retry — a disconnect, a rejected (stale) checkpoint, and
        ``ERR busy`` while the server is still winding down this
        tenant's previous (killed) connection.  Returns every attempt's
        result; the last one is terminal (DONE, a durable refusal such
        as quarantine/budget, or the attempt budget ran out)."""
        results: List[StreamResult] = []
        for _ in range(attempts):
            result = self.stream_text(tenant, bindings, trace_text)
            results.append(result)
            if result.status == "done":
                break
            retryable = (result.status == "disconnected"
                         or result.final.startswith("ERR busy")
                         or result.final.startswith("ERR checkpoint-rejected"))
            if not retryable:
                break
            # Exponential backoff: a busy server is usually draining the
            # kernel-buffered tail of this tenant's killed connection,
            # which takes as long as its analysis takes.
            time.sleep(backoff)
            backoff = min(backoff * 2, 1.0)
        return results


class ControlClient:
    """A blocking control-socket session (one command per call)."""

    def __init__(self, control_path: str,
                 timeout: float = _DEFAULT_TIMEOUT):
        self._path = control_path
        self._timeout = timeout

    def command(self, command: str) -> List[str]:
        """Send one command; the response lines (terminator stripped)."""
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self._timeout)
        try:
            sock.connect(self._path)
            sock.sendall((command + "\n").encode("utf-8"))
            reader = sock.makefile("rb")
            lines: List[str] = []
            while True:
                raw = reader.readline()
                if not raw:
                    break
                line = raw.decode("utf-8").rstrip("\n")
                if line == END_OF_RESPONSE:
                    break
                lines.append(line)
            return lines
        finally:
            try:
                sock.close()
            except OSError:
                pass

    def status(self) -> List[str]:
        return self.command("STATUS")

    def stats(self) -> dict:
        lines = self.command("STATS")
        return json.loads(lines[0]) if lines else {}

    def races(self, tenant: str) -> List[str]:
        return self.command(f"RACES {tenant}")

    def shutdown(self) -> List[str]:
        return self.command("SHUTDOWN")


class ServerThread:
    """A live :class:`DetectionServer` on a background event loop.

    Context manager: entering blocks until both sockets accept;
    exiting drains and joins.  ``error`` carries the exception that
    ended ``serve_forever`` early (the ``raise`` policy's fatal fault),
    so tests can assert on it after the fact.
    """

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.server = DetectionServer(config)
        self.error: Optional[BaseException] = None
        self._loop = None
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._main, daemon=True)

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        if not self._started.wait(timeout=_DEFAULT_TIMEOUT):
            raise RuntimeError("detection server failed to start")
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _main(self) -> None:
        import asyncio
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # surfaced via self.error
            self.error = exc

    async def _amain(self) -> None:
        import asyncio
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._started.set()
        await self.server.serve_forever()

    def stop(self, timeout: float = _DEFAULT_TIMEOUT) -> None:
        """Drain and stop the server; idempotent."""
        loop = self._loop
        if loop is not None and self._thread.is_alive():
            import asyncio

            def _request_drain() -> None:
                asyncio.ensure_future(self.server.drain_and_stop())

            try:
                loop.call_soon_threadsafe(_request_drain)
            except RuntimeError:
                pass  # loop already closed
        self._thread.join(timeout=timeout)
