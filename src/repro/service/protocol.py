"""Wire and control protocols of the detection service.

Both sockets speak newline-delimited UTF-8 — the same framing as the
JSONL trace format, so a monitored process that can already
:func:`~repro.core.serialize.dump_trace` can stream to the daemon by
prepending one line.

Ingest socket (one connection per tenant at a time)::

    C: {"repro-serve": 1, "tenant": "web-42", "objects": {"o": "dictionary"}}
    S: OK NEW                      (or: OK RESUME 1200 / ERR <reason>)
    C: {"repro-trace": 1, "root": 0, "events": 5000}
    C: <event JSONL> ...           (the PR 1 trace wire format, verbatim)
    S: DONE 3                      (declared count reached; 3 race reports)

On ``OK RESUME n`` the client still re-streams its trace from event
zero: the server *fast-forwards* through the first ``n`` events without
re-analyzing them, recomputing the trace-prefix fingerprint digest as it
goes; at the boundary the digest must match the checkpoint's, otherwise
the server answers ``ERR checkpoint-rejected`` and drops the stale
checkpoint — the client's next connect gets ``OK NEW`` and a fresh
analysis.  Dumb clients therefore need exactly one behavior: connect,
stream everything, reconnect on error or disconnect.

Control socket (line commands, response terminated by a lone ``.``)::

    STATUS             one line per tenant: state, events, races, queue hwm
    STATS              the fleet-merged obs report as one JSON line
    RACES <tenant>     the tenant's grouped race report, one group per line
    SHUTDOWN           drain every tenant queue, checkpoint, stop serving
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Dict

from ..core.errors import ReproError

__all__ = ["PROTOCOL_KEY", "PROTOCOL_VERSION", "MAX_TENANT_NAME",
           "ProtocolError", "Hello", "encode_hello", "parse_hello",
           "ok_new", "ok_resume", "err_line", "done_line",
           "END_OF_RESPONSE"]

PROTOCOL_KEY = "repro-serve"
PROTOCOL_VERSION = 1
MAX_TENANT_NAME = 128

#: Terminates every control-socket response.
END_OF_RESPONSE = "."

_TENANT_OK = re.compile(r"^[^\r\n\0]+$")


class ProtocolError(ReproError):
    """A client spoke the ingest or control protocol incorrectly."""


@dataclass(frozen=True)
class Hello:
    """A validated ingest handshake.

    ``shm`` is the optional shared-memory ingest transport: the name of a
    :class:`~repro.core.shmem.ByteRing` the client created and will write
    its header + event lines into (the socket then carries only the
    handshake, acks, and the final status line).  ``None`` = stream the
    trace over the socket as before.
    """

    tenant: str
    objects: Dict[str, str]
    shm: "str | None" = None


def encode_hello(tenant: str, objects: Dict[str, str],
                 shm: "str | None" = None) -> str:
    """The handshake line a client sends (newline not included)."""
    record = {PROTOCOL_KEY: PROTOCOL_VERSION, "tenant": tenant,
              "objects": dict(objects)}
    if shm is not None:
        record["shm"] = shm
    return json.dumps(record)


def parse_hello(line: str, known_kinds) -> Hello:
    """Validate a handshake line; :class:`ProtocolError` on any defect."""
    try:
        record = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"handshake is not JSON: {exc}") from exc
    if not isinstance(record, dict) \
            or record.get(PROTOCOL_KEY) != PROTOCOL_VERSION:
        raise ProtocolError(
            f"not a repro-serve v{PROTOCOL_VERSION} handshake: {line!r}")
    tenant = record.get("tenant")
    if not isinstance(tenant, str) or not tenant \
            or len(tenant) > MAX_TENANT_NAME or not _TENANT_OK.match(tenant):
        raise ProtocolError(f"bad tenant name {tenant!r}")
    objects = record.get("objects")
    if not isinstance(objects, dict) or not objects:
        raise ProtocolError("handshake needs a non-empty objects mapping")
    for name, kind in objects.items():
        if not isinstance(name, str) or not isinstance(kind, str):
            raise ProtocolError(
                f"object binding {name!r}={kind!r} must be strings")
        if kind not in known_kinds:
            raise ProtocolError(
                f"unknown object kind {kind!r} for {name!r}; "
                f"available: {sorted(known_kinds)}")
    shm = record.get("shm")
    if shm is not None and (not isinstance(shm, str) or not shm
                            or len(shm) > MAX_TENANT_NAME):
        raise ProtocolError(f"bad shm segment name {shm!r}")
    return Hello(tenant=tenant, objects=dict(objects), shm=shm)


def ok_new() -> str:
    return "OK NEW"


def ok_resume(events: int) -> str:
    return f"OK RESUME {events}"


def err_line(reason: str) -> str:
    # Reasons are single tokens plus free text; keep them one line.
    return "ERR " + " ".join(str(reason).split())


def done_line(races: int) -> str:
    return f"DONE {races}"
