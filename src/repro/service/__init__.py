"""The multi-tenant detection service.

``repro-serve`` hosts many concurrent trace streams in one daemon: one
bounded-memory streaming analyzer per tenant, bounded ingest queues with
socket-level backpressure, per-tenant fault quarantine and memory
budgets, and atomic crash-resume checkpoints — the deployment shape the
paper's "millions of users" motivation actually calls for.

Layering: :mod:`protocol` (wire format) → :mod:`session` (one tenant's
analysis lifecycle, on :mod:`budget` and :mod:`checkpoints`) →
:mod:`server` (sockets, queues, isolation) → :mod:`client` (reference
blocking client + test harness) → :mod:`chaos` (the adversarial
end-to-end harness) → :mod:`cli` (``repro-serve``).
"""

from .budget import BudgetConfig, TenantBudget
from .checkpoints import (TenantCheckpoint, load_tenant_checkpoint,
                          save_tenant_checkpoint, tenant_checkpoint_path)
from .client import ControlClient, ServerThread, ServiceClient, StreamResult
from .protocol import Hello, ProtocolError, encode_hello, parse_hello
from .server import DetectionServer, ServiceConfig
from .session import SessionConfig, TenantSession

__all__ = [
    "BudgetConfig", "TenantBudget",
    "TenantCheckpoint", "load_tenant_checkpoint", "save_tenant_checkpoint",
    "tenant_checkpoint_path",
    "ControlClient", "ServerThread", "ServiceClient", "StreamResult",
    "Hello", "ProtocolError", "encode_hello", "parse_hello",
    "DetectionServer", "ServiceConfig",
    "SessionConfig", "TenantSession",
]
