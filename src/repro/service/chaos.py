"""The seeded chaos harness: prove the daemon right under abuse.

One run hosts a live :class:`~repro.service.server.DetectionServer` and
drives many concurrent tenants through the failure modes the service
exists to survive:

* **kill/restart** — tenants disconnect mid-stream at seeded byte
  offsets and reconnect, exercising checkpoint fast-forward resume;
* **torn frames** — the cut offsets land mid-record, so the server sees
  half-written JSONL lines flushed by dying clients;
* **budget squeeze** — a deliberately small per-tenant point budget
  forces maintenance windows mid-stream (with a suspension threshold
  high enough that detection continues — the *suspension* path has its
  own dedicated tests);
* **slow-consumer flood** — one designated tenant's analysis worker is
  throttled while its (largest) trace floods in, proving the bounded
  queue and socket backpressure hold the line.

The acceptance bar is strict: after the dust settles, every tenant's
``RACES`` report must be **byte-identical** to an offline single-tenant
analysis of the same trace, and no tenant's ingest-queue high-water mark
may exceed the configured bound.  Both are checked here, not eyeballed.
"""

from __future__ import annotations

import asyncio
import os
import tempfile
import threading
from dataclasses import dataclass, field
from random import Random
from typing import Dict, List, Optional, Tuple

from ..core.detector import CommutativityRaceDetector
from ..core.races import group_races
from ..core.trace import Trace
from ..specs import bundled_objects
from ..testing.workloads import tenant_trace_text
from .budget import BudgetConfig
from .client import ControlClient, ServerThread, ServiceClient, StreamResult
from .server import ServiceConfig
from .session import SessionConfig

__all__ = ["ChaosPlan", "TenantOutcome", "ChaosReport",
           "offline_race_lines", "run_chaos"]


def offline_race_lines(trace: Trace, bindings: Dict[str, str]) -> List[str]:
    """The grouped race report a plain offline analysis produces."""
    registry = bundled_objects()
    detector = CommutativityRaceDetector(root=trace.root)
    for name, kind in bindings.items():
        detector.register_object(name, registry[kind].representation())
    detector.run(trace)
    return [str(group) for group in group_races(detector.races)]


@dataclass(frozen=True)
class ChaosPlan:
    """One seeded, fully deterministic abuse schedule."""

    seed: int
    tenants: int = 8
    #: Mid-stream disconnects per tenant (each at a seeded byte offset).
    min_cuts: int = 0
    max_cuts: int = 2
    #: Worker-side delay injected into the flood tenant's analysis.
    flood_delay: float = 0.002
    #: Ops per worker thread in the generated tenant workloads.
    min_ops: int = 30
    max_ops: int = 120

    @classmethod
    def seeded(cls, seed: int, tenants: int = 8) -> "ChaosPlan":
        return cls(seed=seed, tenants=tenants)


@dataclass
class TenantOutcome:
    """How one tenant fared, with the offline ground truth beside it."""

    tenant: str
    workload_seed: int
    cuts: Tuple[int, ...]
    attempts: List[StreamResult]
    observed_lines: List[str]
    expected_lines: List[str]
    queue_hwm: int
    resumes: int

    @property
    def matched(self) -> bool:
        terminal = self.attempts[-1] if self.attempts else None
        return (terminal is not None and terminal.status == "done"
                and self.observed_lines == self.expected_lines)


@dataclass
class ChaosReport:
    """A full chaos run's verdict and evidence."""

    plan: ChaosPlan
    queue_size: int
    outcomes: List[TenantOutcome]
    stats: dict = field(default_factory=dict)

    @property
    def mismatches(self) -> List[TenantOutcome]:
        return [o for o in self.outcomes if not o.matched]

    @property
    def queue_breaches(self) -> List[TenantOutcome]:
        return [o for o in self.outcomes if o.queue_hwm > self.queue_size]

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.queue_breaches

    def summary(self) -> str:
        races = sum(len(o.expected_lines) for o in self.outcomes)
        resumes = sum(o.resumes for o in self.outcomes)
        cuts = sum(len(o.cuts) for o in self.outcomes)
        hwm = max((o.queue_hwm for o in self.outcomes), default=0)
        lines = [
            f"chaos seed={self.plan.seed} tenants={self.plan.tenants}: "
            f"{'OK' if self.ok else 'FAILED'}",
            f"  race groups (offline ground truth): {races}",
            f"  mid-stream cuts: {cuts}, checkpoint resumes: {resumes}",
            f"  queue hwm: {hwm} (bound {self.queue_size})",
            f"  forced budget windows: "
            f"{self.stats.get('counters', {}).get('budget_forced_windows', 0)}",
        ]
        for outcome in self.mismatches:
            lines.append(f"  MISMATCH {outcome.tenant}: "
                         f"final={outcome.attempts[-1].final!r} "
                         f"observed={len(outcome.observed_lines)} "
                         f"expected={len(outcome.expected_lines)} groups")
        for outcome in self.queue_breaches:
            lines.append(f"  QUEUE BREACH {outcome.tenant}: "
                         f"hwm {outcome.queue_hwm} > {self.queue_size}")
        return "\n".join(lines)


def _seeded_cuts(rng: Random, payload_len: int, min_cuts: int,
                 max_cuts: int) -> Tuple[int, ...]:
    """Byte offsets to tear the stream at — deliberately mid-anything."""
    count = rng.randint(min_cuts, max_cuts)
    return tuple(sorted(rng.randint(1, max(1, payload_len - 1))
                        for _ in range(count)))


def run_chaos(plan: ChaosPlan, base_dir: Optional[str] = None,
              queue_size: int = 8,
              budget_points: Optional[int] = 24) -> ChaosReport:
    """Run one full chaos schedule; see the module docstring."""
    base = base_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    os.makedirs(base, exist_ok=True)
    rng = Random(plan.seed)
    tenants = [f"tenant-{i:02d}" for i in range(plan.tenants)]
    flood = tenants[0]

    async def throttle(tenant: str, events_seen: int) -> None:
        if tenant == flood:
            await asyncio.sleep(plan.flood_delay)

    config = ServiceConfig(
        socket_path=os.path.join(base, "ingest.sock"),
        control_path=os.path.join(base, "control.sock"),
        session=SessionConfig(
            window=32,
            checkpoint_dir=os.path.join(base, "checkpoints"),
            checkpoint_interval=64,
            budget=BudgetConfig(max_points=budget_points,
                                suspend_after=1_000_000)),
        queue_size=queue_size,
        throttle=throttle)

    # Per-tenant schedules drawn up-front so thread interleaving cannot
    # perturb the seeded randomness.
    schedules = []
    for index, tenant in enumerate(tenants):
        workload_seed = rng.randrange(1 << 30)
        ops = (plan.max_ops * 4 if tenant == flood
               else rng.randint(plan.min_ops, plan.max_ops))
        text, bindings, trace = tenant_trace_text(
            workload_seed, min_ops=ops, max_ops=ops)
        cuts = _seeded_cuts(rng, len(text), plan.min_cuts, plan.max_cuts)
        schedules.append((tenant, workload_seed, text, bindings, trace,
                          cuts))

    outcomes: List[Optional[TenantOutcome]] = [None] * len(schedules)
    stats: dict = {}
    with ServerThread(config) as host:
        client = ServiceClient(config.socket_path)
        control = ControlClient(config.control_path)

        def drive(index: int) -> None:
            tenant, wseed, text, bindings, trace, cuts = schedules[index]
            attempts: List[StreamResult] = []
            for cut in cuts:
                attempts.append(client.stream_text(
                    tenant, bindings, text, truncate_at=cut))
            attempts.extend(client.stream_until_done(
                tenant, bindings, text))
            observed = control.races(tenant)
            if observed == ["(no races)"]:
                observed = []
            outcomes[index] = TenantOutcome(
                tenant=tenant, workload_seed=wseed, cuts=cuts,
                attempts=attempts, observed_lines=observed,
                expected_lines=offline_race_lines(trace, bindings),
                queue_hwm=0, resumes=sum(a.resumed > 0 for a in attempts))

        threads = [threading.Thread(target=drive, args=(i,), daemon=True)
                   for i in range(len(schedules))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = control.stats()
        # Queue high-water marks live server-side; read them out of the
        # merged gauges rather than trusting any client-side accounting.
        gauges = stats.get("gauges", {})
        for outcome in outcomes:
            outcome.queue_hwm = int(gauges.get(
                f"tenant_queue_hwm[{outcome.tenant}]", 0))
        control.shutdown()
    if host.error is not None:
        raise host.error
    return ChaosReport(plan=plan, queue_size=queue_size,
                       outcomes=list(outcomes), stats=stats)
