"""Per-tenant memory budgets: forced maintenance, then suspension.

A tenant's :class:`~repro.core.stream.StreamAnalyzer` footprint is its
active + interned access-point count — exactly the quantities the
streaming memory gate bounds offline.  The budget enforces a ceiling on
that footprint at batch boundaries:

1. Under budget: nothing happens (strikes reset).
2. Over budget: a **forced maintenance window** runs immediately —
   batch flush, joined-thread retirement, epoch deflation, then an
   explicit Section 5.3 prune with intern eviction.  All of it is
   report-preserving, so a squeezed tenant's final race report stays
   byte-identical to the offline analysis of its trace.
3. Still over budget after ``suspend_after`` consecutive forced windows
   that failed to get back under: the tenant degrades to
   **budget-exceeded, detection suspended** — its analyzer stops
   consuming events (races found so far remain served) instead of
   growing until the daemon OOMs the whole fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["BudgetConfig", "TenantBudget"]


@dataclass(frozen=True)
class BudgetConfig:
    """Budget knobs shared by every tenant of a server.

    ``max_points`` is the soft/hard ceiling on active + interned points
    (``None`` disables budgeting).  ``suspend_after`` is how many
    *consecutive* forced maintenance windows may fail to reclaim enough
    before the tenant is suspended — transient overshoot between windows
    should squeeze, not kill.
    """

    max_points: Optional[int] = None
    suspend_after: int = 3

    def __post_init__(self) -> None:
        if self.max_points is not None and self.max_points < 1:
            raise ValueError(
                f"max_points must be >= 1, got {self.max_points}")
        if self.suspend_after < 1:
            raise ValueError(
                f"suspend_after must be >= 1, got {self.suspend_after}")


class TenantBudget:
    """One tenant's budget state machine (see module docstring)."""

    def __init__(self, config: BudgetConfig, tenant: str, obs=None):
        self._config = config
        self._tenant = tenant
        self._obs = obs if (obs is not None and obs.enabled) else None
        self._strikes = 0
        self.forced_windows = 0
        self.suspended = False

    def _footprint(self, analyzer) -> int:
        detector = analyzer.detector
        return (detector.active_point_count()
                + detector.interned_point_count())

    def check(self, analyzer) -> str:
        """Enforce the budget at a batch boundary.

        Returns ``"ok"``, ``"forced"`` (a forced maintenance window ran
        and reclaimed enough) or ``"suspend"`` (the tenant must stop
        analyzing).  Idempotent once suspended.
        """
        if self.suspended:
            return "suspend"
        limit = self._config.max_points
        if limit is None:
            return "ok"
        points = self._footprint(analyzer)
        if self._obs is not None:
            self._obs.gauge(f"tenant_points_hwm[{self._tenant}]", points)
        if points <= limit:
            self._strikes = 0
            return "ok"
        # Forced window: everything report-preserving that can shrink the
        # footprint, now rather than at the next periodic boundary.
        analyzer.maintain()
        analyzer.detector.prune_ordered_points()
        self.forced_windows += 1
        if self._obs is not None:
            self._obs.add("budget_forced_windows")
        points = self._footprint(analyzer)
        if points <= limit:
            self._strikes = 0
            return "forced"
        self._strikes += 1
        if self._strikes < self._config.suspend_after:
            return "forced"
        self.suspended = True
        if self._obs is not None:
            self._obs.add("budget_suspensions")
        return "suspend"
