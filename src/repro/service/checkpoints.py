"""Per-tenant stream checkpoints: atomic, namespaced, prefix-validated.

A tenant checkpoint freezes one tenant's whole streaming state — the
:class:`~repro.core.stream.StreamAnalyzer` (detector, happens-before
tables, races found so far), the number of events consumed, and the
SHA-256 fingerprint digest of exactly that trace prefix.  A reconnecting
tenant re-streams its trace from event zero; the server fast-forwards
through ``events_processed`` events, recomputing the digest, and adopts
the checkpointed analyzer only when the digests agree — resuming against
an edited or different trace is detected before a single event is
trusted, mirroring the phase-A resume guards.

Files ride the sealed-payload container from
:mod:`repro.core.checkpoint` (own magic, 8-byte length, SHA-256,
pickled payload; atomic tmp/fsync/replace writes), so torn writes and
corruption surface as :class:`~repro.core.errors.CheckpointError` and
degrade to a fresh analysis — never a wrong one.

Namespacing: many tenants (possibly from many daemons) share one
checkpoint directory.  Each tenant's file name is a sanitized slug of
its name *plus* a short content hash of the raw name, so two tenants
whose names collapse to the same slug (``"a/b"`` vs ``"a_b"``) can never
collide on disk.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.checkpoint import read_sealed_payload, write_sealed_payload
from ..core.errors import CheckpointError

__all__ = ["TENANT_CHECKPOINT_VERSION", "TenantCheckpoint",
           "tenant_checkpoint_path", "save_tenant_checkpoint",
           "load_tenant_checkpoint", "discard_tenant_checkpoint"]

TENANT_MAGIC = b"repro-tenant-checkpoint\n"
# Version 2 added ``declared_events``: a resumed tenant whose reconnect
# hello omits the declared count (killed writer, headerless re-stream)
# adopts the checkpointed one, so completion detection survives resume.
# Version-1 files fail the version guard below and degrade to a fresh
# analysis — safe, the documented skew behavior.
TENANT_CHECKPOINT_VERSION = 2

_SLUG_BAD = re.compile(r"[^A-Za-z0-9._-]")


@dataclass
class TenantCheckpoint:
    """One tenant's resumable streaming state (see module docstring)."""

    version: int
    tenant: str
    root: object
    events_processed: int
    prefix_digest: str
    bindings: Dict[str, str]
    analyzer: object  # the pickled StreamAnalyzer, hooks detached
    #: The trace header's declared event count at checkpoint time (None
    #: for headerless streams) — resume metadata so a reconnecting
    #: tenant can still recognize end-of-trace.
    declared_events: Optional[int] = None


def tenant_checkpoint_path(directory: str, tenant: str) -> str:
    """The collision-free checkpoint path for ``tenant`` in ``directory``."""
    slug = _SLUG_BAD.sub("_", tenant)[:48] or "tenant"
    tag = hashlib.sha256(tenant.encode("utf-8")).hexdigest()[:12]
    return os.path.join(directory, f"tenant-{slug}-{tag}.ckpt")


def save_tenant_checkpoint(directory: str,
                           checkpoint: TenantCheckpoint) -> str:
    """Atomically persist ``checkpoint``; returns the file path."""
    os.makedirs(directory, exist_ok=True)
    path = tenant_checkpoint_path(directory, checkpoint.tenant)
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    write_sealed_payload(path, payload, magic=TENANT_MAGIC)
    return path


def load_tenant_checkpoint(directory: str,
                           tenant: str) -> Optional[TenantCheckpoint]:
    """The tenant's checkpoint, ``None`` if absent.

    Any defect in a file that *is* present — truncation, digest
    mismatch, foreign magic, version skew, or a tenant-name mismatch
    (slug collision would require a broken hash, but the guard is
    cheap) — raises :class:`CheckpointError` for the caller to degrade.
    """
    path = tenant_checkpoint_path(directory, tenant)
    if not os.path.exists(path):
        return None
    payload = read_sealed_payload(path, magic=TENANT_MAGIC)
    try:
        checkpoint = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"{path} payload does not unpickle: {exc}") from exc
    if not isinstance(checkpoint, TenantCheckpoint):
        raise CheckpointError(
            f"{path} does not contain a TenantCheckpoint "
            f"(got {type(checkpoint).__name__})")
    if checkpoint.version != TENANT_CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has unsupported tenant-checkpoint version "
            f"{checkpoint.version} (this build reads "
            f"version {TENANT_CHECKPOINT_VERSION})")
    if checkpoint.tenant != tenant:
        raise CheckpointError(
            f"{path} belongs to tenant {checkpoint.tenant!r}, "
            f"not {tenant!r}")
    return checkpoint


def discard_tenant_checkpoint(directory: str, tenant: str) -> None:
    """Remove a (rejected) checkpoint; missing files are fine."""
    try:
        os.unlink(tenant_checkpoint_path(directory, tenant))
    except OSError:
        pass
