"""The multi-tenant detection daemon: sockets, queues, isolation.

One asyncio process serves many monitored applications ("tenants") at
once.  Each tenant streams its trace over a unix-domain socket in the
PR 1 wire format behind one handshake line
(:mod:`repro.service.protocol`); the server runs one
:class:`~repro.service.session.TenantSession` per tenant and answers a
line-oriented control socket (``STATUS`` / ``STATS`` / ``RACES`` /
``SHUTDOWN``).

Robustness properties, each load-bearing for "millions of users":

* **Backpressure, never buffering.**  Every tenant's decoded events go
  through a *bounded* :class:`asyncio.Queue`.  When the tenant's
  analysis worker falls behind, ``queue.put`` blocks the socket reader,
  the kernel socket buffer fills, and the *client* stalls — a flooding
  tenant costs itself latency, never the daemon memory.  The observed
  high-water mark is published as ``tenant_queue_hwm[<tenant>]`` (gauges
  merge by max) so the bound is checkable from the outside.
* **Fault isolation.**  A tenant whose stream is malformed or whose
  analyzer raises is handled with the PR 3 ``analyzer_policy`` semantics
  through a shared :class:`~repro.core.supervise.QuarantinePolicy`
  (``site="tenant"``): ``log`` tolerates, ``disable`` quarantines the
  tenant after ``max_faults`` strikes, ``raise`` stops the daemon.
  Neighbor tenants never notice either way.
* **Budget degradation.**  Each session enforces the shared
  :class:`~repro.service.budget.BudgetConfig`; a tenant that stays over
  budget through forced maintenance windows degrades to
  *budget-exceeded, detection suspended* — races found so far keep
  being served, new events are refused.
* **Crash-resume.**  Sessions cut atomic per-tenant checkpoints on a
  cadence and on disconnect; a reconnecting tenant re-streams from event
  zero and the server fast-forwards through the checkpointed prefix,
  validating its fingerprint digest before trusting a byte
  (:mod:`repro.service.checkpoints`).
* **Frame caps.**  Socket reads inherit the
  :data:`~repro.core.serialize.MAX_RECORD_BYTES` cap through the asyncio
  stream limit — an unterminated megabyte "line" is an error, not an
  unbounded buffer.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional

from ..core.errors import CheckpointError, ReproError
from ..core.faults import FaultLog
from ..core.serialize import (MAX_RECORD_BYTES, _FORMAT_KEY, _FORMAT_VERSION,
                              _decode_event, _decode_value)
from ..core.supervise import ANALYZER_POLICIES, QuarantinePolicy
from ..obs import Registry
from ..specs import bundled_objects
from .protocol import (END_OF_RESPONSE, ProtocolError, done_line, err_line,
                       ok_new, ok_resume, parse_hello)
from .session import SUSPENDED, SessionConfig, TenantSession

__all__ = ["ServiceConfig", "DetectionServer"]

#: Queue sentinels: the stream completed its declared event count / the
#: stream ended early (disconnect, torn frame, drain) with no more events.
_COMPLETE = object()
_PARTIAL = object()

#: How often a parked socket read re-checks for drain/fault wind-down.
_READ_TICK = 0.05


class _RingLineReader:
    """Async line reader over a shared-memory :class:`ByteRing`.

    Duck-types the one method ``_readline`` uses (``readline()``), so the
    shm ingest path reuses the socket path's framing, cap, and torn-frame
    semantics verbatim: a complete line ends in ``\\n``; EOF (writer
    closed and drained) yields the unterminated tail or ``b""`` exactly
    like a socket EOF; a line over ``max_line`` raises ``ValueError``
    (asyncio's over-limit signal).

    Cancel-safe by construction: ring bytes are moved into the line
    buffer synchronously — the only await point is the idle sleep — so
    the ``wait_for`` tick in ``_readline`` can cancel us without losing
    data.
    """

    def __init__(self, ring, max_line: int, poll: float = 0.002):
        self._ring = ring
        self._max = max_line
        self._poll = poll
        self._buf = bytearray()

    async def readline(self) -> bytes:
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line = bytes(self._buf[:newline + 1])
                del self._buf[:newline + 1]
                return line
            if len(self._buf) > self._max:
                raise ValueError(
                    f"shm frame exceeds the {self._max}-byte record cap")
            chunk = self._ring.read()
            if chunk:
                self._buf += chunk
                continue
            if self._ring.eof:
                tail = bytes(self._buf)
                self._buf.clear()
                return tail
            await asyncio.sleep(self._poll)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`DetectionServer` needs to come up.

    ``queue_size`` bounds every tenant's ingest queue (the backpressure
    knob).  ``throttle`` is a test/chaos hook — an async callable
    ``(tenant, events_seen)`` awaited before each analyzed event, used
    to simulate a slow consumer without patching the analyzer.
    """

    socket_path: str
    control_path: str
    session: SessionConfig = field(default_factory=SessionConfig)
    queue_size: int = 64
    max_record_bytes: int = MAX_RECORD_BYTES
    analyzer_policy: str = "disable"
    max_faults: int = 3
    #: Accept handshakes carrying an ``shm`` byte-ring name (the trace
    #: then bypasses the socket).  Off → such handshakes get
    #: ``ERR shm-unavailable`` and the client falls back to the socket.
    allow_shm: bool = True
    throttle: Optional[Callable[[str, int], Awaitable[None]]] = field(
        default=None, repr=False)

    def __post_init__(self) -> None:
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, "
                             f"got {self.queue_size}")
        if self.max_record_bytes < 1:
            raise ValueError(f"max_record_bytes must be >= 1, "
                             f"got {self.max_record_bytes}")
        if self.analyzer_policy not in ANALYZER_POLICIES:
            raise ValueError(
                f"analyzer_policy must be one of {ANALYZER_POLICIES}, "
                f"got {self.analyzer_policy!r}")


class _Tenant:
    """Server-side per-tenant state that outlives any one connection."""

    __slots__ = ("name", "obs", "session", "connected", "suspended",
                 "queue_hwm", "events_ingested")

    def __init__(self, name: str):
        self.name = name
        self.obs = Registry()
        self.session: Optional[TenantSession] = None
        self.connected = False
        self.suspended = False
        self.queue_hwm = 0
        self.events_ingested = 0

    def display_state(self, policy: QuarantinePolicy) -> str:
        if policy.is_quarantined(self.name):
            return "quarantined"
        if self.suspended:
            return "suspended"
        if self.session is None:
            return "idle"
        return self.session.state


class DetectionServer:
    """The daemon: see the module docstring for the design."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.obs = Registry()
        self.faults = FaultLog()
        self._policy = QuarantinePolicy(
            policy=config.analyzer_policy, max_faults=config.max_faults,
            obs=self.obs, faults=self.faults, site="tenant")
        self._kinds = frozenset(bundled_objects())
        self._tenants: Dict[str, _Tenant] = {}
        self._connections: set = set()
        self._draining = False
        self._fatal: Optional[BaseException] = None
        self._stopped: Optional[asyncio.Event] = None
        self._ingest_server = None
        self._control_server = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind both sockets; the server is accepting when this returns."""
        self._stopped = asyncio.Event()
        for path in (self.config.socket_path, self.config.control_path):
            try:
                os.unlink(path)
            except OSError:
                pass
        self._ingest_server = await asyncio.start_unix_server(
            self._handle_ingest, path=self.config.socket_path,
            limit=self.config.max_record_bytes)
        self._control_server = await asyncio.start_unix_server(
            self._handle_control, path=self.config.control_path,
            limit=self.config.max_record_bytes)

    async def serve_forever(self) -> None:
        """Block until ``SHUTDOWN`` (or a fatal tenant fault under the
        ``raise`` policy, which is then re-raised here)."""
        await self._stopped.wait()
        await self._teardown()
        if self._fatal is not None:
            raise self._fatal

    async def _teardown(self) -> None:
        for server in (self._ingest_server, self._control_server):
            if server is not None:
                server.close()
                await server.wait_closed()
        for path in (self.config.socket_path, self.config.control_path):
            try:
                os.unlink(path)
            except OSError:
                pass

    def run(self) -> None:
        """Synchronous convenience: start, serve, tear down."""
        asyncio.run(self._run())

    async def _run(self) -> None:
        await self.start()
        await self.serve_forever()

    async def drain_and_stop(self) -> None:
        """The ``SHUTDOWN`` path: refuse new streams, let every active
        connection wind down (workers drain their queues, sessions
        checkpoint), then stop serving."""
        if self._draining:
            return
        self._draining = True
        if self._connections:
            await asyncio.gather(*tuple(self._connections),
                                 return_exceptions=True)
        self._stopped.set()

    # -- shared plumbing ---------------------------------------------------

    def _tenant(self, name: str) -> _Tenant:
        entry = self._tenants.get(name)
        if entry is None:
            entry = self._tenants[name] = _Tenant(name)
        return entry

    async def _readline(self, reader, stop: Callable[[], bool]
                        ) -> Optional[bytes]:
        """One frame, ``None`` on drain/fault wind-down or disconnect.

        Raises ``ValueError`` (asyncio's over-limit signal) when a line
        exceeds the record cap.  The periodic tick keeps a silent client
        from pinning a connection open across a drain.
        """
        while True:
            if stop():
                return None
            try:
                raw = await asyncio.wait_for(reader.readline(), _READ_TICK)
            except asyncio.TimeoutError:
                continue
            if not raw or not raw.endswith(b"\n"):
                # EOF, or a torn frame flushed by a dying client: either
                # way there is no complete record here and never will be.
                return None
            return raw

    @staticmethod
    async def _send(writer, line: str) -> None:
        try:
            writer.write((line + "\n").encode("utf-8"))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass  # the client is gone; nothing left to tell it

    # -- ingest ------------------------------------------------------------

    async def _handle_ingest(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._ingest(reader, writer)
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    async def _ingest(self, reader, writer) -> None:
        try:
            raw = await self._readline(reader, lambda: self._draining)
        except ValueError:
            self.obs.add("stream_frame_errors")
            await self._send(writer, err_line("frame-too-large handshake "
                                              "exceeds the record cap"))
            return
        if raw is None:
            if self._draining:
                await self._send(writer, err_line("draining"))
            return
        try:
            hello = parse_hello(raw.decode("utf-8", "replace"), self._kinds)
        except ProtocolError as exc:
            self.obs.add("protocol_errors")
            await self._send(writer, err_line(str(exc)))
            return
        tenant = self._tenant(hello.tenant)
        if self._policy.is_quarantined(tenant.name):
            await self._send(writer, err_line("quarantined"))
            return
        if tenant.suspended:
            await self._send(writer, err_line("budget-exceeded detection "
                                              "suspended"))
            return
        if tenant.connected:
            await self._send(writer, err_line(
                f"busy tenant {tenant.name} already has a live stream"))
            return
        tenant.connected = True
        self.obs.add("streams_accepted")
        try:
            await self._stream(tenant, hello, reader, writer)
        finally:
            tenant.connected = False

    async def _stream(self, tenant: _Tenant, hello, reader, writer) -> None:
        # Shared-memory ingest: the handshake named a client-owned byte
        # ring; attach *before* acking so a bad segment is refused while
        # the client still listens, and read header + events from the
        # ring (the socket keeps carrying acks and the final status).
        ring = None
        if hello.shm is not None:
            if not self.config.allow_shm:
                await self._send(writer, err_line(
                    "shm-unavailable disabled by configuration"))
                return
            try:
                from ..core.shmem import ByteRing
                ring = ByteRing.attach(hello.shm)
            except Exception as exc:
                self.obs.add("protocol_errors")
                await self._send(writer, err_line(f"shm-unavailable {exc}"))
                return
            self.obs.add("shm_streams")
        try:
            await self._stream_session(tenant, hello, reader, writer, ring)
        finally:
            if ring is not None:
                ring.close()  # the client owns (and unlinks) the segment

    async def _stream_session(self, tenant: _Tenant, hello, reader, writer,
                              ring) -> None:
        session = TenantSession(tenant.name, hello.objects,
                                self.config.session, obs=tenant.obs)
        try:
            resumed = session.prepare_resume()
        except CheckpointError:
            # A corrupt/torn checkpoint file degrades to a fresh
            # analysis — never a wrong one, never a dead tenant.
            tenant.obs.add("tenant_checkpoints_rejected")
            session.reject_checkpoint()
            resumed = 0
        await self._send(writer, ok_resume(resumed) if resumed else ok_new())
        if ring is not None:
            reader = _RingLineReader(ring, self.config.max_record_bytes)

        status = {"failed": None}

        def stop() -> bool:
            return self._draining or status["failed"] is not None

        # Trace header.
        try:
            raw = await self._readline(reader, stop)
        except ValueError:
            await self._frame_fault(tenant, writer, "trace header")
            return
        if raw is None:
            if self._draining:
                await self._send(writer, err_line("draining"))
            return
        try:
            header = json.loads(raw)
            if not isinstance(header, dict) \
                    or header.get(_FORMAT_KEY) != _FORMAT_VERSION:
                raise ProtocolError(f"not a repro-trace v{_FORMAT_VERSION} "
                                    f"header: {raw!r}")
            root = _decode_value(header["root"])
            declared = header.get("events")
        except ProtocolError as exc:
            await self._tenant_fault(tenant, writer, exc)
            return
        except Exception as exc:
            await self._tenant_fault(tenant, writer, ProtocolError(
                f"bad trace header: {exc}"))
            return
        try:
            session.start(root, declared)
        except CheckpointError as exc:
            tenant.obs.add("tenant_checkpoints_rejected")
            await self._send(writer, err_line(f"checkpoint-rejected {exc}"))
            return
        tenant.session = session

        queue: asyncio.Queue = asyncio.Queue(maxsize=self.config.queue_size)
        worker = asyncio.create_task(
            self._pump(tenant, session, queue, status))
        received = 0
        complete = declared == 0
        try:
            while not complete:
                try:
                    raw = await self._readline(reader, stop)
                except ValueError:
                    status["failed"] = status["failed"] or ReproError(
                        f"stream record exceeds the "
                        f"{self.config.max_record_bytes}-byte cap")
                    tenant.obs.add("stream_frame_errors")
                    break
                if raw is None:
                    break
                try:
                    event = _decode_event(json.loads(raw))
                except Exception as exc:
                    status["failed"] = status["failed"] or ReproError(
                        f"malformed event record: {exc}")
                    break
                await queue.put(event)
                received += 1
                tenant.events_ingested += 1
                depth = queue.qsize()
                if depth > tenant.queue_hwm:
                    tenant.queue_hwm = depth
                    tenant.obs.gauge(f"tenant_queue_hwm[{tenant.name}]",
                                     depth)
                if declared is not None and received >= declared:
                    complete = True
            await queue.put(_COMPLETE if complete and not stop()
                            else _PARTIAL)
            outcome = await worker
            if outcome == "partial" and status["failed"] is not None:
                # The *reader* hit the failure (malformed record or an
                # over-cap frame) while the worker was still healthy.
                outcome = "fault"
        finally:
            if not worker.done():
                worker.cancel()
        await self._conclude(tenant, session, writer, status, outcome)

    async def _pump(self, tenant: _Tenant, session: TenantSession,
                    queue: asyncio.Queue, status: dict) -> str:
        """The tenant's analysis worker: feed events until a sentinel.

        Never lets the reader deadlock: after a fault or suspension it
        keeps *discarding* queued events (so a blocked ``put`` always
        unblocks) until the reader notices ``status`` and sends the
        sentinel.
        """
        throttle = self.config.throttle
        outcome = "partial"
        while True:
            item = await queue.get()
            if item is _PARTIAL:
                return outcome
            if item is _COMPLETE:
                if outcome != "partial":
                    return outcome
                try:
                    session.finish()
                except CheckpointError as exc:
                    status["failed"] = exc
                    return "checkpoint-rejected"
                except Exception as exc:
                    status["failed"] = exc
                    return "fault"
                return "done"
            if status["failed"] is not None or outcome != "partial":
                continue
            try:
                if throttle is not None:
                    await throttle(session.tenant, session.events_seen)
                session.feed(item)
            except CheckpointError as exc:
                status["failed"] = exc
                outcome = "checkpoint-rejected"
                continue
            except Exception as exc:
                status["failed"] = exc
                outcome = "fault"
                continue
            if session.state is SUSPENDED:
                outcome = "suspended"
                continue
            # One yield per event keeps tenants interleaved even when a
            # single stream is saturating its queue.
            await asyncio.sleep(0)

    async def _conclude(self, tenant: _Tenant, session: TenantSession,
                        writer, status: dict, outcome: str) -> None:
        if outcome == "done":
            tenant.obs.add("streams_completed")
            await self._send(writer, done_line(len(session.races)))
            return
        if outcome == "checkpoint-rejected":
            tenant.obs.add("tenant_checkpoints_rejected")
            await self._send(writer, err_line(
                f"checkpoint-rejected {status['failed']}"))
            return
        if outcome == "fault":
            await self._tenant_fault(tenant, writer, status["failed"])
            return
        if outcome == "suspended":
            tenant.suspended = True
            await self._send(writer, err_line("budget-exceeded detection "
                                              "suspended"))
            return
        # Partial: drain, torn frame, or plain disconnect — park the
        # state for a resume and (if draining) tell the client why.
        session.save_checkpoint()
        if self._draining:
            await self._send(writer, err_line("draining"))

    async def _frame_fault(self, tenant: _Tenant, writer,
                           where: str) -> None:
        tenant.obs.add("stream_frame_errors")
        await self._tenant_fault(tenant, writer, ReproError(
            f"{where} exceeds the {self.config.max_record_bytes}-byte "
            f"record cap"))

    async def _tenant_fault(self, tenant: _Tenant, writer,
                            exc: BaseException) -> None:
        """Apply the analyzer policy to one tenant's failure."""
        action = self._policy.record_failure(tenant.name, tenant.name, exc)
        if action == "quarantine":
            await self._send(writer, err_line("quarantined"))
            return
        await self._send(writer, err_line(f"analyzer-fault {exc}"))
        if action == "raise":
            self._fatal = exc if isinstance(exc, Exception) else \
                ReproError(str(exc))
            self._stopped.set()

    # -- control -----------------------------------------------------------

    async def _handle_control(self, reader, writer) -> None:
        try:
            while True:
                try:
                    raw = await self._readline(
                        reader, lambda: self._stopped.is_set())
                except ValueError:
                    break
                if raw is None:
                    break
                command = raw.decode("utf-8", "replace").strip()
                if not command:
                    continue
                shutdown = False
                if command == "STATUS":
                    lines = self._status_lines()
                elif command == "STATS":
                    lines = [json.dumps(self.merged_stats(), sort_keys=True)]
                elif command.startswith("RACES "):
                    lines = self._race_lines(command[len("RACES "):].strip())
                elif command == "SHUTDOWN":
                    lines = ["OK"]
                    shutdown = True
                else:
                    lines = [err_line(f"unknown-command {command}")]
                for line in lines:
                    await self._send(writer, line)
                await self._send(writer, END_OF_RESPONSE)
                if shutdown:
                    await self.drain_and_stop()
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _status_lines(self) -> List[str]:
        lines = []
        for name in sorted(self._tenants):
            entry = self._tenants[name]
            session = entry.session
            events = session.events_seen if session is not None else 0
            races = len(session.races) if session is not None else 0
            lines.append(
                f"{name} state={entry.display_state(self._policy)} "
                f"events={events} races={races} "
                f"queue_hwm={entry.queue_hwm} "
                f"faults={self._policy.fault_count(name)}")
        return lines or ["(no tenants)"]

    def _race_lines(self, name: str) -> List[str]:
        entry = self._tenants.get(name)
        if entry is None or entry.session is None:
            return [err_line(f"unknown-tenant {name}")]
        return entry.session.race_lines() or ["(no races)"]

    def merged_stats(self) -> dict:
        """The fleet-wide obs snapshot: server + every tenant, merged."""
        merged = Registry()
        merged.absorb(self.obs)
        for entry in self._tenants.values():
            merged.absorb(entry.obs)
        return merged.snapshot()
