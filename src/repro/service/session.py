"""One tenant's analysis lifecycle inside the detection daemon.

A :class:`TenantSession` owns everything tenant-scoped that the server's
connection plumbing must not care about: the
:class:`~repro.core.stream.StreamAnalyzer`, the running trace-prefix
fingerprint digest, the memory budget, and the checkpoint cadence.  The
server decodes events off the socket and calls :meth:`feed`; the session
decides whether each event is analyzed (fresh or post-resume), merely
fast-forwarded (re-streamed prefix of a resume), or refused (suspended).

States::

    NEW --start()--> ANALYZING ----------------------> DONE
            \\-> FAST_FORWARD -(digest ok)-> ANALYZING
                    \\-(digest mismatch)-> CheckpointError, caller degrades
    ANALYZING -(budget strikes out)-> SUSPENDED

Quarantine is *not* a session state — a raising session is a fault the
server attributes through its :class:`~repro.core.supervise.
QuarantinePolicy`, which outlives the session (a quarantined tenant stays
quarantined across reconnects; a session is per-analysis).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.checkpoint import event_fingerprint
from ..core.errors import CheckpointError
from ..core.events import Event
from ..core.races import group_races
from ..core.stream import StreamAnalyzer
from ..specs import bundled_objects
from .budget import BudgetConfig, TenantBudget
from .checkpoints import (TENANT_CHECKPOINT_VERSION, TenantCheckpoint,
                          discard_tenant_checkpoint, load_tenant_checkpoint,
                          save_tenant_checkpoint)

__all__ = ["SessionConfig", "TenantSession",
           "NEW", "FAST_FORWARD", "ANALYZING", "SUSPENDED", "DONE"]

NEW = "new"
FAST_FORWARD = "fast-forward"
ANALYZING = "analyzing"
SUSPENDED = "suspended"
DONE = "done"


@dataclass(frozen=True)
class SessionConfig:
    """Analysis knobs shared by every tenant of one server.

    ``prune_interval``/``window`` are the :class:`StreamAnalyzer`'s
    (pruning is verdict-preserving, so any setting reports equivalently
    to offline analysis; the defaults report *byte*-identically).
    ``checkpoint_dir=None`` disables crash-resume entirely.  The budget
    is checked and checkpoints are cut at maintenance-window boundaries
    — between events, where forced maintenance is report-preserving and
    a pickled analyzer resumes byte-identically.
    """

    prune_interval: int = 256
    window: int = 1024
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 4096
    budget: BudgetConfig = field(default_factory=BudgetConfig)

    def __post_init__(self) -> None:
        if self.checkpoint_interval < 1:
            raise ValueError(f"checkpoint_interval must be >= 1, "
                             f"got {self.checkpoint_interval}")


class TenantSession:
    """See the module docstring for the state machine."""

    def __init__(self, tenant: str, bindings: Dict[str, str],
                 config: SessionConfig, obs=None):
        self.tenant = tenant
        self.bindings = dict(bindings)
        self._config = config
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.state = NEW
        self.root = None
        self.declared_events: Optional[int] = None
        self.events_seen = 0          # events accepted from this stream
        self.analyzer: Optional[StreamAnalyzer] = None
        self.budget = TenantBudget(config.budget, tenant, obs=obs)
        self._digest = hashlib.sha256()
        self._checkpoint: Optional[TenantCheckpoint] = None
        self._fast_forwarded = 0

    # -- handshake ---------------------------------------------------------

    def prepare_resume(self) -> int:
        """Probe for a usable checkpoint; events to fast-forward (0 = fresh).

        Called at HELLO time so the server can ack ``OK NEW`` vs
        ``OK RESUME n``.  A checkpoint whose object bindings differ from
        this handshake's is useless (the analyzer was built for other
        objects) and is discarded rather than rejected — the client did
        nothing wrong, it just gets a fresh analysis.
        """
        directory = self._config.checkpoint_dir
        if directory is None:
            return 0
        checkpoint = load_tenant_checkpoint(directory, self.tenant)
        if checkpoint is None:
            return 0
        if checkpoint.bindings != self.bindings \
                or checkpoint.events_processed < 1:
            discard_tenant_checkpoint(directory, self.tenant)
            return 0
        self._checkpoint = checkpoint
        return checkpoint.events_processed

    def start(self, root, declared_events: Optional[int]) -> None:
        """Consume the trace header; enters ANALYZING or FAST_FORWARD."""
        if self.state is not NEW:
            raise CheckpointError(f"session for {self.tenant!r} already "
                                  f"started (state {self.state})")
        self.root = root
        self.declared_events = declared_events
        checkpoint = self._checkpoint
        if checkpoint is not None and declared_events is None:
            # Reconnect hello without a declared count (killed writer,
            # headerless re-stream): adopt the checkpointed one so the
            # resumed session can still recognize end-of-trace.
            self.declared_events = checkpoint.declared_events
        if checkpoint is not None and checkpoint.root != root:
            self.reject_checkpoint()
            raise CheckpointError(
                f"checkpoint for {self.tenant!r} was cut at root thread "
                f"{checkpoint.root!r}, stream header declares {root!r}")
        if checkpoint is not None and declared_events is not None \
                and declared_events < checkpoint.events_processed:
            self.reject_checkpoint()
            raise CheckpointError(
                f"checkpoint for {self.tenant!r} covers "
                f"{checkpoint.events_processed} events but the stream "
                f"declares only {declared_events}")
        if checkpoint is not None:
            self.state = FAST_FORWARD
            return
        registry = bundled_objects()
        self.analyzer = StreamAnalyzer(
            root=root,
            prune_interval=self._config.prune_interval,
            window=self._config.window)
        for name, kind in self.bindings.items():
            self.analyzer.register_object(name,
                                          registry[kind].representation())
        self.state = ANALYZING

    def reject_checkpoint(self) -> None:
        """Drop the pending checkpoint (digest/shape mismatch)."""
        self._checkpoint = None
        if self._config.checkpoint_dir is not None:
            discard_tenant_checkpoint(self._config.checkpoint_dir,
                                      self.tenant)

    # -- the stream --------------------------------------------------------

    def feed(self, event: Event) -> None:
        """Consume one decoded event (or skip it while fast-forwarding).

        Raises :class:`CheckpointError` when a resume's re-streamed
        prefix does not fingerprint to the checkpointed digest, and
        whatever the analyzer raises on an inconsistent event — the
        server turns either into per-tenant fault handling.
        """
        if self.state is SUSPENDED:
            return
        if self.state is FAST_FORWARD:
            self._digest.update(event_fingerprint(event))
            self._fast_forwarded += 1
            self.events_seen += 1
            if self._fast_forwarded == self._checkpoint.events_processed:
                self._adopt_checkpoint()
            return
        if self.state is not ANALYZING:
            raise CheckpointError(
                f"session for {self.tenant!r} cannot accept events in "
                f"state {self.state}")
        self._digest.update(event_fingerprint(event))
        self.analyzer.process(event)
        self.events_seen += 1
        config = self._config
        if self.events_seen % config.window == 0:
            if self.budget.check(self.analyzer) == "suspend":
                self.state = SUSPENDED
                return
            if config.checkpoint_dir is not None \
                    and self.events_seen % config.checkpoint_interval == 0:
                self.save_checkpoint()

    def _adopt_checkpoint(self) -> None:
        checkpoint = self._checkpoint
        if self._digest.hexdigest() != checkpoint.prefix_digest:
            self.reject_checkpoint()
            raise CheckpointError(
                f"re-streamed prefix of {self.tenant!r} does not match "
                f"its checkpoint (trace changed since the checkpoint was "
                f"cut); checkpoint dropped")
        self.analyzer = checkpoint.analyzer
        self._checkpoint = None
        self.state = ANALYZING
        if self._obs is not None:
            self._obs.add("tenants_resumed")

    def finish(self) -> List:
        """Declared count reached: final maintenance, final checkpoint."""
        if self.state is FAST_FORWARD:
            # The stream ended exactly at the checkpoint boundary is
            # impossible here (start() rejects shorter declarations and
            # _adopt fires *at* the boundary), so reaching finish() while
            # still fast-forwarding means the declaration lied.
            self.reject_checkpoint()
            raise CheckpointError(
                f"stream for {self.tenant!r} ended before its "
                f"checkpointed prefix was re-streamed")
        if self.state is ANALYZING:
            self.analyzer.finish()
            self.state = DONE
            if self._config.checkpoint_dir is not None:
                self.save_checkpoint()
        return self.races

    # -- introspection & persistence ---------------------------------------

    @property
    def races(self) -> List:
        return [] if self.analyzer is None else self.analyzer.races

    def race_lines(self) -> List[str]:
        """The grouped race report, one deterministic line per group.

        Exactly the lines ``repro-analyze`` prints for the same trace —
        the chaos harness compares them byte-for-byte.
        """
        return [str(group) for group in group_races(self.races)]

    def save_checkpoint(self) -> Optional[str]:
        """Cut a checkpoint now (between events); path, or None if off."""
        directory = self._config.checkpoint_dir
        if directory is None or self.analyzer is None \
                or self.events_seen < 1 or self.state is FAST_FORWARD:
            return None
        checkpoint = TenantCheckpoint(
            version=TENANT_CHECKPOINT_VERSION,
            tenant=self.tenant,
            root=self.root,
            events_processed=self.events_seen,
            prefix_digest=self._digest.hexdigest(),
            bindings=dict(self.bindings),
            analyzer=self.analyzer,
            declared_events=self.declared_events)
        path = save_tenant_checkpoint(directory, checkpoint)
        if self._obs is not None:
            self._obs.add("tenant_checkpoints_written")
        return path
