"""``repro-serve`` — run the multi-tenant detection daemon (or its chaos
harness).

Daemon mode binds the ingest and control sockets and serves until a
``SHUTDOWN`` control command (or SIGINT) drains it::

    repro-serve --socket /run/repro/ingest.sock \\
                --control /run/repro/control.sock \\
                --checkpoint-dir /var/lib/repro/checkpoints

Chaos mode hosts a throwaway daemon and drives the seeded abuse
schedule from :mod:`repro.service.chaos`, exiting non-zero unless every
tenant's final race report is byte-identical to offline analysis and
every ingest queue stayed within its bound::

    repro-serve --chaos 7 --tenants 8 --stats-json chaos-stats.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

from ..core.supervise import ANALYZER_POLICIES

EXIT_CLEAN = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_INTERRUPT = 130


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Multi-tenant commutativity race detection daemon.")
    parser.add_argument("--socket", metavar="PATH",
                        help="unix socket for tenant trace streams")
    parser.add_argument("--control", metavar="PATH",
                        help="unix socket for STATUS/STATS/RACES/SHUTDOWN")
    parser.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                        help="enable crash-resume checkpoints in DIR")
    parser.add_argument("--checkpoint-interval", type=int, default=4096,
                        metavar="N", help="events between checkpoints "
                        "(default %(default)s)")
    parser.add_argument("--queue-size", type=int, default=64, metavar="N",
                        help="per-tenant ingest queue bound "
                        "(default %(default)s)")
    parser.add_argument("--window", type=int, default=1024, metavar="N",
                        help="maintenance window in events "
                        "(default %(default)s)")
    parser.add_argument("--prune-interval", type=int, default=256,
                        metavar="N", help="detector prune cadence "
                        "(default %(default)s)")
    parser.add_argument("--max-points", type=int, default=None, metavar="N",
                        help="per-tenant point budget (default: unlimited)")
    parser.add_argument("--suspend-after", type=int, default=3, metavar="N",
                        help="forced windows before a tenant is suspended "
                        "(default %(default)s)")
    parser.add_argument("--analyzer-policy", choices=ANALYZER_POLICIES,
                        default="disable",
                        help="tenant fault policy (default %(default)s)")
    parser.add_argument("--max-faults", type=int, default=3, metavar="N",
                        help="faults before quarantine under the disable "
                        "policy (default %(default)s)")
    parser.add_argument("--no-shm", action="store_true",
                        help="refuse shared-memory ingest handshakes "
                        "(clients fall back to socket streaming)")
    parser.add_argument("--chaos", type=int, default=None, metavar="SEED",
                        help="run the seeded chaos harness instead of "
                        "serving")
    parser.add_argument("--tenants", type=int, default=8, metavar="N",
                        help="chaos mode: concurrent tenants "
                        "(default %(default)s)")
    parser.add_argument("--stats-json", metavar="PATH", default=None,
                        help="write the merged obs snapshot here on exit")
    return parser


def _write_stats(path: Optional[str], stats: dict) -> None:
    if not path:
        return
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as out:
        json.dump(stats, out, indent=2, sort_keys=True)
        out.write("\n")
    os.replace(tmp, path)


def _run_chaos(args) -> int:
    from .chaos import ChaosPlan, run_chaos
    report = run_chaos(ChaosPlan.seeded(args.chaos, tenants=args.tenants),
                       queue_size=args.queue_size,
                       budget_points=args.max_points or 24)
    print(report.summary())
    _write_stats(args.stats_json, report.stats)
    return EXIT_CLEAN if report.ok else EXIT_FAILED


def _serve(args) -> int:
    from .budget import BudgetConfig
    from .server import DetectionServer, ServiceConfig
    from .session import SessionConfig
    config = ServiceConfig(
        socket_path=args.socket,
        control_path=args.control,
        session=SessionConfig(
            prune_interval=args.prune_interval,
            window=args.window,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_interval=args.checkpoint_interval,
            budget=BudgetConfig(max_points=args.max_points,
                                suspend_after=args.suspend_after)),
        queue_size=args.queue_size,
        analyzer_policy=args.analyzer_policy,
        max_faults=args.max_faults,
        allow_shm=not args.no_shm)
    server = DetectionServer(config)
    print(f"repro-serve: ingest {args.socket} control {args.control}",
          flush=True)
    try:
        server.run()
    finally:
        _write_stats(args.stats_json, server.merged_stats())
    return EXIT_CLEAN


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.chaos is None and (not args.socket or not args.control):
        parser.error("--socket and --control are required "
                     "(or use --chaos SEED)")
    try:
        if args.chaos is not None:
            return _run_chaos(args)
        return _serve(args)
    except ValueError as exc:
        print(f"repro-serve: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except KeyboardInterrupt:
        return EXIT_INTERRUPT


if __name__ == "__main__":
    sys.exit(main())
