"""Analyzer adapters: the tools pluggable into a :class:`~repro.runtime.
monitor.Monitor`.

Each analyzer consumes the full event stream and keeps its own state,
mirroring RoadRunner's tool-chain design (the paper runs FASTTRACK and RD2
as separate RoadRunner tools over the same instrumentation):

* :class:`Rd2Analyzer` — the commutativity race detector (Algorithm 1),
  named after the paper's tool.
* :class:`DirectAnalyzer` — the Θ(|A|) specification-level detector.
* :class:`FastTrackAnalyzer` — the read/write baseline; consumes memory and
  synchronization events, ignores method actions.
* :class:`EraserAnalyzer` — lockset baseline.
* :class:`NullAnalyzer` — counts events, detects nothing; isolates the
  instrumentation overhead itself in the benchmarks.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Hashable, List, Optional

from ..baselines.eraser import Eraser
from ..baselines.fasttrack import FastTrack
from ..core.access_points import AccessPointRepresentation
from ..core.detector import CommutativityRaceDetector, Strategy
from ..core.direct import DirectDetector
from ..core.errors import MonitorError
from ..core.events import Action, Event
from ..core.races import RaceReport
from ..core.vector_clock import Tid
from .shared import interface_event

__all__ = ["Analyzer", "Rd2Analyzer", "DirectAnalyzer",
           "FastTrackAnalyzer", "EraserAnalyzer", "NullAnalyzer"]


class Analyzer(ABC):
    """One dynamic analysis attached to the monitor."""

    name: str = "analyzer"

    def register_object(self, obj_id: Hashable, *,
                        representation: Optional[AccessPointRepresentation] = None,
                        commutes: Optional[Callable[[Action, Action], bool]] = None
                        ) -> None:
        """A shared object came into being; default: not interested."""

    def release_object(self, obj_id: Hashable) -> None:
        """The object died; default: nothing to reclaim."""

    @abstractmethod
    def process(self, event: Event) -> None:
        """Consume one trace event."""

    def races(self) -> List[RaceReport]:
        """Race reports found so far (empty for non-detecting analyzers)."""
        return []


class Rd2Analyzer(Analyzer):
    """The paper's RD2: commutativity race detection over access points."""

    name = "rd2"

    def __init__(self, root: Tid = 0, strategy: Strategy = Strategy.AUTO,
                 keep_reports: bool = True, obs=None):
        self.detector = CommutativityRaceDetector(
            root=root, strategy=strategy, keep_reports=keep_reports, obs=obs)

    def register_object(self, obj_id, *, representation=None, commutes=None):
        if representation is None:
            raise MonitorError(
                f"RD2 needs an access point representation for {obj_id!r}; "
                f"attach the object with representation=...")
        self.detector.register_object(obj_id, representation)

    def release_object(self, obj_id) -> None:
        self.detector.release_object(obj_id)

    def process(self, event: Event) -> None:
        # RD2 analyzes the library-interface trace: memory accesses and the
        # collections' internal critical sections are below its abstraction
        # level (and internal locks would spuriously order all actions).
        if interface_event(event):
            self.detector.process(event)

    def races(self) -> List[RaceReport]:
        return list(self.detector.races)

    @property
    def stats(self):
        return self.detector.stats


class DirectAnalyzer(Analyzer):
    """Specification-level pairwise checking (the Section 5.1 strawman)."""

    name = "direct"

    def __init__(self, root: Tid = 0, keep_reports: bool = True):
        self.detector = DirectDetector(root=root, keep_reports=keep_reports)

    def register_object(self, obj_id, *, representation=None, commutes=None):
        if commutes is None:
            raise MonitorError(
                f"the direct detector needs a commutes predicate for "
                f"{obj_id!r}; attach the object with commutes=...")
        self.detector.register_object(obj_id, commutes)

    def process(self, event: Event) -> None:
        if interface_event(event):
            self.detector.process(event)

    def races(self) -> List[RaceReport]:
        return list(self.detector.races)

    @property
    def stats(self):
        return self.detector.stats


class FastTrackAnalyzer(Analyzer):
    """The FASTTRACK baseline of Table 2."""

    name = "fasttrack"

    def __init__(self, root: Tid = 0, keep_reports: bool = True):
        self.detector = FastTrack(root=root, keep_reports=keep_reports)

    def process(self, event: Event) -> None:
        self.detector.process(event)

    def races(self) -> List[RaceReport]:
        return list(self.detector.races)


class EraserAnalyzer(Analyzer):
    """Lockset-discipline checking (extra baseline)."""

    name = "eraser"

    def __init__(self, root: Tid = 0, keep_reports: bool = True):
        self.detector = Eraser(root=root, keep_reports=keep_reports)

    def process(self, event: Event) -> None:
        self.detector.process(event)

    def races(self) -> List[RaceReport]:
        return list(self.detector.warnings)


class NullAnalyzer(Analyzer):
    """Pays the event-stream cost, detects nothing."""

    name = "null"

    def __init__(self):
        self.event_count = 0

    def process(self, event: Event) -> None:
        self.event_count += 1
