"""Generic dynamic method interception.

:class:`intercept` wraps *any* Python object so that calls to the methods
named in a commutativity specification are transparently reported to a
monitor as interface-level actions — the "instrument your own library" entry
point, with the access point representation obtained automatically by
translating the specification (Fig. 2's pipeline end to end).

Example::

    spec = CommutativitySpec("inventory")
    spec.method("reserve", params=("item",), returns=("ok",))
    spec.method("stock", params=("item",), returns=("n",))
    spec.pair("reserve", "reserve", "item1 != item2")
    spec.pair("reserve", "stock", "item1 != item2")
    spec.default_true()

    inventory = intercept(monitor, Inventory(), spec)
    inventory.reserve("widget")      # monitored like a native collection

Methods outside the specification pass through unmonitored.  The wrapped
object must be linearizable on its own (interception reports invocations,
it does not add synchronization); under the cooperative scheduler every
invocation is atomic anyway.
"""

from __future__ import annotations

import functools
from typing import Any, Optional, Tuple

from ..core.access_points import AccessPointRepresentation
from ..core.errors import SpecificationError
from ..logic.spec import CommutativitySpec
from ..logic.translate import translate
from .collections_rt import _fresh_id
from .monitor import Monitor

__all__ = ["InterceptedObject", "intercept"]


class InterceptedObject:
    """Proxy reporting specified method calls as monitored actions."""

    def __init__(self, monitor: Monitor, target: Any,
                 spec: CommutativitySpec,
                 representation: Optional[AccessPointRepresentation] = None,
                 name: Optional[str] = None):
        self._monitor = monitor
        self._target = target
        self._spec = spec
        self.obj_id = name if name is not None else _fresh_id(spec.kind)
        if representation is None:
            representation = translate(spec)
        monitor.attach_object(self.obj_id, representation=representation,
                              commutes=spec.commutes)

    def release(self) -> None:
        self._monitor.release_object(self.obj_id)

    def __getattr__(self, attr: str) -> Any:
        # Only called for attributes not found on the proxy itself.
        value = getattr(self._target, attr)
        if attr not in self._spec.methods or not callable(value):
            return value
        sig = self._spec.signature(attr)

        obs = self._monitor.obs
        site_calls = (obs.breakdown("calls_by_site")
                      if obs is not None else None)
        site_key = (self.obj_id, attr)

        @functools.wraps(value)
        def monitored_call(*args: Any) -> Any:
            if len(args) != len(sig.params):
                raise SpecificationError(
                    f"{self.obj_id}.{attr} expects {len(sig.params)} "
                    f"argument(s) per its specification, got {len(args)}")
            self._monitor.preempt()
            result = value(*args)
            returns = self._pack_returns(sig.returns, result)
            self._monitor.on_action(self.obj_id, attr, tuple(args), returns)
            if site_calls is not None:
                site_calls[site_key] = site_calls.get(site_key, 0) + 1
            return result

        return monitored_call

    @staticmethod
    def _pack_returns(return_names: Tuple[str, ...],
                      result: Any) -> Tuple[Any, ...]:
        if not return_names:
            return ()
        if len(return_names) == 1:
            return (result,)
        result_tuple = tuple(result)
        if len(result_tuple) != len(return_names):
            raise SpecificationError(
                f"method returned {len(result_tuple)} values, "
                f"specification names {len(return_names)}")
        return result_tuple

    def __repr__(self) -> str:
        return f"InterceptedObject({self.obj_id} -> {self._target!r})"


def intercept(monitor: Monitor, target: Any, spec: CommutativitySpec,
              representation: Optional[AccessPointRepresentation] = None,
              name: Optional[str] = None) -> InterceptedObject:
    """Wrap ``target`` so its specified methods are monitored.

    ``representation`` defaults to translating ``spec`` (which must then be
    in ECL); pass one explicitly to use a hand-written representation.
    """
    return InterceptedObject(monitor, target, spec, representation, name)
