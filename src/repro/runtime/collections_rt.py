"""Monitored concurrent collections (the ConcurrentHashMap substitutes).

Each collection is a *linearizable* in-memory structure whose methods:

1. offer the scheduler a preemption point on entry (the invocation itself
   is atomic, matching Section 3.1's execution model);
2. perform the operation inside an *internal* critical section whose lock
   events and memory accesses are reported for the memory-level analyses
   (FastTrack sees a correctly synchronized implementation);
3. report the completed invocation as an interface-level ACTION event with
   its actual arguments and return values — the input to RD2.

Every collection registers itself with the monitor under its object id,
carrying both its access point representation (for RD2) and its
``commutes`` predicate (for the direct detector/oracle), defaulting to the
bundled artifacts of :mod:`repro.specs`.

The paper's ``nil`` convention is used throughout: a :class:`MonitoredDict`
maps absent keys to ``NIL``, and ``put(k, v)/NIL`` means the key was fresh.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.access_points import AccessPointRepresentation
from ..core.events import NIL
from ..logic.spec import CommutativitySpec
from ..specs.accumulator import accumulator_representation, accumulator_spec
from ..specs.counter import counter_representation, counter_spec
from ..specs.dictionary import (dictionary_representation,
                                extended_dictionary_spec)
from ..specs.list_spec import (multiset_log_representation,
                               multiset_log_spec)
from ..specs.set_spec import set_representation, set_spec
from .monitor import Monitor
from .shared import internal_lock_id

__all__ = ["MonitoredObject", "MonitoredDict", "MonitoredSet",
           "MonitoredCounter", "MonitoredAccumulator", "MonitoredLog",
           "MonitoredQueue"]

_serials: Dict[str, itertools.count] = {}


def _fresh_id(kind: str) -> str:
    counter = _serials.setdefault(kind, itertools.count())
    return f"{kind}#{next(counter)}"


class MonitoredObject:
    """Common machinery: identity, registration, event emission."""

    KIND = "object"

    def __init__(self, monitor: Monitor, name: Optional[str] = None, *,
                 representation: Optional[AccessPointRepresentation] = None,
                 spec: Optional[CommutativitySpec] = None):
        self._monitor = monitor
        self.obj_id = name if name is not None else _fresh_id(self.KIND)
        self._internal_lock = internal_lock_id(self.obj_id)
        if representation is None:
            representation = self._default_representation()
        if spec is None:
            spec = self._default_spec()
        self.spec = spec
        monitor.attach_object(self.obj_id, representation=representation,
                              commutes=spec.commutes)

    def _default_representation(self) -> AccessPointRepresentation:
        raise NotImplementedError

    def _default_spec(self) -> CommutativitySpec:
        raise NotImplementedError

    def release(self) -> None:
        """The object is dead: reclaim analyzer state (Section 5.3)."""
        self._monitor.release_object(self.obj_id)

    # -- emission helpers -------------------------------------------------------

    def _enter(self) -> bool:
        """Preemption point + internal lock entry; True if instrumented."""
        monitor = self._monitor
        monitor.preempt()
        if not monitor.enabled:
            return False
        if monitor.low_level:
            monitor.on_acquire(self._internal_lock)
        return True

    def _exit(self, method: str, args: Tuple[Any, ...],
              returns: Tuple[Any, ...], instrumented: bool) -> None:
        if not instrumented:
            return
        monitor = self._monitor
        if monitor.low_level:
            monitor.on_release(self._internal_lock)
        monitor.on_action(self.obj_id, method, args, returns)

    def _read(self, *location_parts: Hashable) -> None:
        self._monitor.on_read((self.obj_id, *location_parts))

    def _write(self, *location_parts: Hashable) -> None:
        self._monitor.on_write((self.obj_id, *location_parts))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.obj_id})"


class MonitoredDict(MonitoredObject):
    """The library's ConcurrentHashMap stand-in (extended Fig. 6 object)."""

    KIND = "dict"

    def __init__(self, monitor: Monitor, name: Optional[str] = None,
                 **kwargs):
        super().__init__(monitor, name, **kwargs)
        self._data: Dict[Hashable, Any] = {}

    def _default_representation(self):
        return dictionary_representation()

    def _default_spec(self):
        return extended_dictionary_spec()

    # -- operations -----------------------------------------------------------

    def put(self, key: Hashable, value: Any) -> Any:
        """Associate ``key`` with ``value``; returns the previous value.

        ``put(k, NIL)`` erases the key (the dictionary model of Fig. 5).
        """
        instrumented = self._enter()
        if instrumented:
            self._read("entry", key)
            self._write("entry", key)
        prev = self._data.get(key, NIL)
        if value is NIL:
            self._data.pop(key, None)
        else:
            self._data[key] = value
        if instrumented and (value is NIL) != (prev is NIL):
            self._read("size")
            self._write("size")
        self._exit("put", (key, value), (prev,), instrumented)
        return prev

    def get(self, key: Hashable) -> Any:
        instrumented = self._enter()
        if instrumented:
            self._read("entry", key)
        value = self._data.get(key, NIL)
        self._exit("get", (key,), (value,), instrumented)
        return value

    def size(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("size")
        count = len(self._data)
        self._exit("size", (), (count,), instrumented)
        return count

    def remove(self, key: Hashable) -> Any:
        instrumented = self._enter()
        if instrumented:
            self._read("entry", key)
            self._write("entry", key)
        prev = self._data.pop(key, NIL)
        if instrumented and prev is not NIL:
            self._read("size")
            self._write("size")
        self._exit("remove", (key,), (prev,), instrumented)
        return prev

    def contains(self, key: Hashable) -> bool:
        instrumented = self._enter()
        if instrumented:
            self._read("entry", key)
        present = key in self._data
        self._exit("contains", (key,), (present,), instrumented)
        return present

    def put_if_absent(self, key: Hashable, value: Any) -> Any:
        """Java's ``putIfAbsent``: store only when absent; returns previous."""
        instrumented = self._enter()
        if instrumented:
            self._read("entry", key)
        prev = self._data.get(key, NIL)
        if prev is NIL and value is not NIL:
            if instrumented:
                self._write("entry", key)
                self._read("size")
                self._write("size")
            self._data[key] = value
        self._exit("putIfAbsent", (key, value), (prev,), instrumented)
        return prev

    # -- unmonitored inspection (test/bench support, not part of the model) --

    def snapshot(self) -> Dict[Hashable, Any]:
        return dict(self._data)

    def __len__(self) -> int:
        return len(self._data)


class MonitoredSet(MonitoredObject):
    """A concurrent set with effectiveness-reporting add/remove."""

    KIND = "set"

    def __init__(self, monitor: Monitor, name: Optional[str] = None,
                 **kwargs):
        super().__init__(monitor, name, **kwargs)
        self._data: set = set()

    def _default_representation(self):
        return set_representation()

    def _default_spec(self):
        return set_spec()

    def add(self, element: Hashable) -> bool:
        instrumented = self._enter()
        if instrumented:
            self._read("entry", element)
        changed = element not in self._data
        if changed:
            self._data.add(element)
            if instrumented:
                self._write("entry", element)
                self._read("size")
                self._write("size")
        self._exit("add", (element,), (1 if changed else 0,), instrumented)
        return changed

    def remove(self, element: Hashable) -> bool:
        instrumented = self._enter()
        if instrumented:
            self._read("entry", element)
        changed = element in self._data
        if changed:
            self._data.discard(element)
            if instrumented:
                self._write("entry", element)
                self._read("size")
                self._write("size")
        self._exit("remove", (element,), (1 if changed else 0,), instrumented)
        return changed

    def contains(self, element: Hashable) -> bool:
        instrumented = self._enter()
        if instrumented:
            self._read("entry", element)
        present = element in self._data
        self._exit("contains", (element,), (1 if present else 0,),
                   instrumented)
        return present

    def size(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("size")
        count = len(self._data)
        self._exit("size", (), (count,), instrumented)
        return count

    def __len__(self) -> int:
        return len(self._data)


class MonitoredCounter(MonitoredObject):
    """A concurrent counter: blind adds commute."""

    KIND = "counter"

    def __init__(self, monitor: Monitor, name: Optional[str] = None,
                 **kwargs):
        super().__init__(monitor, name, **kwargs)
        self._value = 0

    def _default_representation(self):
        return counter_representation()

    def _default_spec(self):
        return counter_spec()

    def add(self, delta: int) -> None:
        instrumented = self._enter()
        if instrumented:
            self._read("value")
            self._write("value")
        self._value += delta
        self._exit("add", (delta,), (), instrumented)

    def read(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("value")
        value = self._value
        self._exit("read", (), (value,), instrumented)
        return value


class MonitoredAccumulator(MonitoredObject):
    """A statistics cell: total and peak of folded samples."""

    KIND = "accumulator"

    def __init__(self, monitor: Monitor, name: Optional[str] = None,
                 **kwargs):
        super().__init__(monitor, name, **kwargs)
        self._total = 0
        self._peak = 0

    def _default_representation(self):
        return accumulator_representation()

    def _default_spec(self):
        return accumulator_spec()

    def sample(self, measurement: int) -> None:
        instrumented = self._enter()
        if instrumented:
            self._read("total")
            self._write("total")
            self._read("peak")
            self._write("peak")
        self._total += measurement
        self._peak = max(self._peak, measurement)
        self._exit("sample", (measurement,), (), instrumented)

    def total(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("total")
        value = self._total
        self._exit("total", (), (value,), instrumented)
        return value

    def peak(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("peak")
        value = self._peak
        self._exit("peak", (), (value,), instrumented)
        return value


class MonitoredQueue(MonitoredObject):
    """A concurrent FIFO queue (deq returns ``NIL`` when empty)."""

    KIND = "queue"

    def __init__(self, monitor: Monitor, name: Optional[str] = None,
                 **kwargs):
        super().__init__(monitor, name, **kwargs)
        self._items: List[Any] = []

    def _default_representation(self):
        from ..specs.queue_spec import queue_representation
        return queue_representation()

    def _default_spec(self):
        from ..specs.queue_spec import queue_spec
        return queue_spec()

    def enq(self, item: Any) -> None:
        instrumented = self._enter()
        if instrumented:
            self._read("tail")
            self._write("tail")
        self._items.append(item)
        self._exit("enq", (item,), (), instrumented)

    def deq(self) -> Any:
        instrumented = self._enter()
        if instrumented:
            self._read("head")
        if self._items:
            item = self._items.pop(0)
            if instrumented:
                self._write("head")
        else:
            item = NIL
        self._exit("deq", (), (item,), instrumented)
        return item

    def peek(self) -> Any:
        instrumented = self._enter()
        if instrumented:
            self._read("head")
        item = self._items[0] if self._items else NIL
        self._exit("peek", (), (item,), instrumented)
        return item

    def size(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("tail")
        count = len(self._items)
        self._exit("size", (), (count,), instrumented)
        return count

    def __len__(self) -> int:
        return len(self._items)


class MonitoredLog(MonitoredObject):
    """An unordered event log: blind appends commute, length reads do not."""

    KIND = "msetlog"

    def __init__(self, monitor: Monitor, name: Optional[str] = None,
                 **kwargs):
        super().__init__(monitor, name, **kwargs)
        self._entries: List[Any] = []

    def _default_representation(self):
        return multiset_log_representation()

    def _default_spec(self):
        return multiset_log_spec()

    def log(self, entry: Any) -> None:
        instrumented = self._enter()
        if instrumented:
            self._read("tail")
            self._write("tail")
        self._entries.append(entry)
        self._exit("log", (entry,), (), instrumented)

    def snapshot(self) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("tail")
        length = len(self._entries)
        self._exit("snapshot", (), (length,), instrumented)
        return length

    def count(self, entry: Any) -> int:
        instrumented = self._enter()
        if instrumented:
            self._read("tail")
        occurrences = self._entries.count(entry)
        self._exit("count", (entry,), (occurrences,), instrumented)
        return occurrences

    def entries(self) -> List[Any]:
        return list(self._entries)
