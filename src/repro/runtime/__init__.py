"""The dynamic-analysis runtime: monitor, analyzers, shared-memory
primitives, monitored collections, and generic interception (this
library's RoadRunner substitute)."""

from .analyzers import (Analyzer, DirectAnalyzer, EraserAnalyzer,
                        FastTrackAnalyzer, NullAnalyzer, Rd2Analyzer)
from .collections_rt import (MonitoredAccumulator, MonitoredCounter,
                             MonitoredDict, MonitoredLog, MonitoredObject,
                             MonitoredQueue, MonitoredSet)
from .instrument import InterceptedObject, intercept
from .monitor import Monitor, ROOT_TID
from .shared import (INTERNAL_LOCK_TAG, MonitoredLock, SharedVar,
                     interface_event, internal_lock_id, is_internal_lock)

__all__ = [
    "Analyzer", "DirectAnalyzer", "EraserAnalyzer", "FastTrackAnalyzer",
    "NullAnalyzer", "Rd2Analyzer",
    "MonitoredAccumulator", "MonitoredCounter", "MonitoredDict",
    "MonitoredLog", "MonitoredObject", "MonitoredQueue", "MonitoredSet",
    "InterceptedObject", "intercept",
    "Monitor", "ROOT_TID",
    "INTERNAL_LOCK_TAG", "MonitoredLock", "SharedVar", "interface_event",
    "internal_lock_id", "is_internal_lock",
]
