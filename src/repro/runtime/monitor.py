"""The dynamic-analysis monitor: this library's RoadRunner substitute.

A :class:`Monitor` is the hub between instrumented program constructs and
analyses.  Monitored collections, shared variables, locks and the scheduler
report what the program does (`on_action`, `on_read`, `on_write`,
`on_fork`, ...); the monitor turns each report into a trace event and
dispatches it to every attached analyzer — mirroring how RoadRunner streams
events through a tool chain.

Key properties:

* **Pluggable analyzers** (:mod:`repro.runtime.analyzers`): RD2, the direct
  detector, FastTrack, Eraser, a null analyzer — any combination.
* **Cheap when disabled**: with no analyzers and recording off,
  :attr:`enabled` is false and instrumentation sites skip event
  construction entirely, which is how the "Uninstrumented" column of
  Table 2 is measured without duplicating application code.
* **Thread identity** comes from the scheduler when one drives the program
  (:meth:`bind_tid_provider`), else from an automatic per-OS-thread
  registry.
* **Serialized dispatch**: events are processed under an internal mutex, so
  analyzer state needs no further synchronization even if the program uses
  real preemptive threads.
* **Analyzer isolation**: by default an analyzer exception propagates into
  the monitored application (``analyzer_policy="raise"``, correct for
  tests and controlled replay, where a broken analyzer must be loud).  In
  production-style monitoring that coupling is backwards — the *tool*
  must not take the *application* down — so ``"log"`` swallows and counts
  each analyzer exception, and ``"disable"`` additionally quarantines an
  analyzer after ``max_analyzer_faults`` failures, dropping it from
  dispatch for the rest of the run.  Faults land in :attr:`Monitor.faults`
  and the obs registry (``analyzer_faults`` breakdown by analyzer name,
  ``analyzers_quarantined`` counter).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Iterable, List, Optional, Tuple

from ..core.access_points import AccessPointRepresentation
from ..core.errors import MonitorError
from ..core.events import (Action, Event, acquire_event, action_event,
                           begin_event, commit_event, fork_event, join_event,
                           read_event, release_event, write_event)
from ..core.faults import FaultLog
from ..core.supervise import ANALYZER_POLICIES, QuarantinePolicy
from ..core.trace import Trace
from ..core.vector_clock import Tid

__all__ = ["Monitor", "ROOT_TID", "ANALYZER_POLICIES"]

ROOT_TID: Tid = 0

# ANALYZER_POLICIES is re-exported from repro.core.supervise, where the
# shared QuarantinePolicy (monitor + detection-service tenant sessions)
# now lives.


class Monitor:
    """Event hub between instrumented constructs and analyzers.

    Parameters
    ----------
    analyzers:
        Initial analyzers (see :mod:`repro.runtime.analyzers`); more can be
        attached with :meth:`add_analyzer` before the run starts.
    record_trace:
        Keep the full event sequence in :attr:`trace` (needed by the oracle
        and by replay-based tests; off for long benchmark runs).
    obs:
        Optional :class:`~repro.obs.registry.Registry`.  The dispatch path
        (already serialized under the monitor mutex) tallies events per
        kind into the ``events_by_kind`` breakdown, and instrumentation
        proxies (:mod:`repro.runtime.instrument`) attribute their
        intercepted calls per ``(object, method)`` site through
        :attr:`obs`.  A disabled registry costs the dispatch path one
        ``is None`` test, preserving the "cheap when disabled" property
        Table 2's Uninstrumented column relies on.
    analyzer_policy:
        What an analyzer exception does to the monitored run: ``"raise"``
        (default) propagates it, ``"log"`` records it and keeps the
        analyzer attached, ``"disable"`` records it and quarantines the
        analyzer once it has faulted ``max_analyzer_faults`` times.
    max_analyzer_faults:
        Quarantine threshold for the ``"disable"`` policy (a single
        transient exception should not evict an otherwise healthy
        analyzer; an analyzer crashing on every event should not get to
        log millions of faults either).
    """

    def __init__(self, analyzers: Iterable = (),
                 record_trace: bool = False, low_level: bool = True,
                 obs=None, analyzer_policy: str = "raise",
                 max_analyzer_faults: int = 5):
        if analyzer_policy not in ANALYZER_POLICIES:
            raise ValueError(
                f"analyzer_policy must be one of {ANALYZER_POLICIES}, "
                f"got {analyzer_policy!r}")
        if max_analyzer_faults < 1:
            raise ValueError(
                f"max_analyzer_faults must be >= 1, got {max_analyzer_faults}")
        self._analyzers: List = list(analyzers)
        self._record = record_trace
        #: emit memory-access and internal-lock events?  False models the
        #: paper's "only instrument the ConcurrentHashMaps" ablation.
        self.low_level = low_level
        self.trace: Optional[Trace] = Trace(root=ROOT_TID) if record_trace else None
        self._mutex = threading.Lock()
        self._tid_provider: Optional[Callable[[], Tid]] = None
        self._thread_tids: dict = {threading.get_ident(): ROOT_TID}
        self._next_tid = 1
        self._preempt: Callable[[], None] = lambda: None
        self.events_emitted = 0
        self.obs = obs if (obs is not None and obs.enabled) else None
        self._obs_by_kind = (self.obs.breakdown("events_by_kind")
                             if self.obs is not None else None)
        self.analyzer_policy = analyzer_policy
        self.max_analyzer_faults = max_analyzer_faults
        #: Isolated analyzer failures (empty under the ``raise`` policy).
        self.faults = FaultLog()
        self._policy = QuarantinePolicy(
            policy=analyzer_policy, max_faults=max_analyzer_faults,
            obs=self.obs, faults=self.faults, site="analyzer")
        self._isolate = self._policy.isolates

    # -- configuration -----------------------------------------------------

    def add_analyzer(self, analyzer) -> None:
        self._analyzers.append(analyzer)

    @property
    def analyzers(self) -> Tuple:
        return tuple(self._analyzers)

    @property
    def enabled(self) -> bool:
        """Whether instrumentation sites should bother reporting."""
        return bool(self._analyzers) or self._record

    def bind_tid_provider(self, provider: Callable[[], Tid]) -> None:
        """Let a scheduler dictate thread identity (overrides the registry)."""
        self._tid_provider = provider

    def bind_preempt(self, preempt: Callable[[], None]) -> None:
        """Install the scheduler's yield point, called at every shared op."""
        self._preempt = preempt

    def preempt(self) -> None:
        """Offer the scheduler a chance to interleave (no-op if unbound)."""
        self._preempt()

    # -- thread identity ------------------------------------------------------

    def current_tid(self) -> Tid:
        if self._tid_provider is not None:
            return self._tid_provider()
        ident = threading.get_ident()
        with self._mutex:
            tid = self._thread_tids.get(ident)
            if tid is None:
                raise MonitorError(
                    "current OS thread is not registered with the monitor; "
                    "fork threads via the scheduler or call adopt_thread()")
            return tid

    def adopt_thread(self, tid: Optional[Tid] = None) -> Tid:
        """Register the calling OS thread under a (fresh) tid.

        Only needed when running without the cooperative scheduler; the
        caller is responsible for also reporting the fork edge.
        """
        ident = threading.get_ident()
        with self._mutex:
            if tid is None:
                tid = self._next_tid
                self._next_tid += 1
            self._thread_tids[ident] = tid
            return tid

    def fresh_tid(self) -> Tid:
        with self._mutex:
            tid = self._next_tid
            self._next_tid += 1
            return tid

    # -- object lifecycle ---------------------------------------------------------

    def attach_object(self, obj_id: Hashable, *,
                      representation: Optional[AccessPointRepresentation] = None,
                      commutes: Optional[Callable[[Action, Action], bool]] = None
                      ) -> None:
        """Announce a shared object to all analyzers that track objects."""
        for analyzer in self._analyzers:
            analyzer.register_object(obj_id, representation=representation,
                                     commutes=commutes)

    def release_object(self, obj_id: Hashable) -> None:
        """The object died; analyzers may reclaim its auxiliary state."""
        for analyzer in self._analyzers:
            analyzer.release_object(obj_id)

    # -- event reporting --------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        with self._mutex:
            self.events_emitted += 1
            if self._obs_by_kind is not None:
                kind = event.kind.value
                self._obs_by_kind[kind] = self._obs_by_kind.get(kind, 0) + 1
            if self.trace is not None:
                self.trace.append(event)
            if not self._isolate:
                for analyzer in self._analyzers:
                    analyzer.process(event)
                return
            for analyzer in self._analyzers:
                if self._policy.is_quarantined(id(analyzer)):
                    continue
                try:
                    analyzer.process(event)
                except Exception as exc:
                    # The shared QuarantinePolicy does all the accounting
                    # (fault records, obs counters, the disable-after-N
                    # decision); isolation means the verdict is never
                    # "raise" here.
                    name = getattr(analyzer, "name",
                                   type(analyzer).__name__)
                    self._policy.record_failure(id(analyzer), name, exc)

    def quarantined_analyzers(self) -> Tuple:
        """Analyzers currently dropped from dispatch (``disable`` policy)."""
        return tuple(a for a in self._analyzers
                     if self._policy.is_quarantined(id(a)))

    def on_action(self, obj_id: Hashable, method: str,
                  args: Tuple[Any, ...], returns: Tuple[Any, ...]) -> None:
        if not self.enabled:
            return
        tid = self.current_tid()
        self._dispatch(action_event(tid, Action(obj_id, method, args, returns)))

    def on_fork(self, child: Tid, parent: Optional[Tid] = None) -> None:
        if not self.enabled:
            return
        tid = parent if parent is not None else self.current_tid()
        self._dispatch(fork_event(tid, child))

    def on_join(self, child: Tid, waiter: Optional[Tid] = None) -> None:
        if not self.enabled:
            return
        tid = waiter if waiter is not None else self.current_tid()
        self._dispatch(join_event(tid, child))

    def on_acquire(self, lock_id: Hashable) -> None:
        if not self.enabled:
            return
        self._dispatch(acquire_event(self.current_tid(), lock_id))

    def on_release(self, lock_id: Hashable) -> None:
        if not self.enabled:
            return
        self._dispatch(release_event(self.current_tid(), lock_id))

    def on_begin(self) -> None:
        """The current thread enters an intended-atomic block."""
        if not self.enabled:
            return
        self._dispatch(begin_event(self.current_tid()))

    def on_commit(self) -> None:
        """The current thread leaves its intended-atomic block."""
        if not self.enabled:
            return
        self._dispatch(commit_event(self.current_tid()))

    def on_read(self, location: Hashable) -> None:
        if not self.enabled or not self.low_level:
            return
        self._dispatch(read_event(self.current_tid(), location))

    def on_write(self, location: Hashable) -> None:
        if not self.enabled or not self.low_level:
            return
        self._dispatch(write_event(self.current_tid(), location))

    # -- results --------------------------------------------------------------------

    def races(self) -> List:
        """All race reports across analyzers, in attachment order."""
        out: List = []
        for analyzer in self._analyzers:
            out.extend(analyzer.races())
        return out

    def summary(self) -> str:
        """A human-readable digest of the run: events, races, groups.

        Race reports are grouped (see
        :func:`~repro.core.races.group_races`) so redundant reports
        collapse to one line each, the way a user triages them.
        """
        from ..core.races import group_races, tally
        lines = [f"monitored execution: {self.events_emitted} events"]
        for analyzer in self._analyzers:
            reports = analyzer.races()
            name = getattr(analyzer, "name", type(analyzer).__name__)
            lines.append(f"  [{name}] {tally(reports)} reports")
            for group in group_races(reports):
                lines.append(f"    {group}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        names = [type(a).__name__ for a in self._analyzers]
        return f"Monitor(analyzers={names}, events={self.events_emitted})"
