"""Shared-memory primitives: variables and locks.

These are the low-level constructs the applications build on:

* :class:`SharedVar` — a plain (unsynchronized) field.  Reads/writes report
  READ/WRITE events; this is what the FastTrack/Eraser baselines chew on,
  exactly like RoadRunner instrumenting ordinary Java fields.
* :class:`MonitoredLock` — an application-level lock: acquiring/releasing
  reports ACQUIRE/RELEASE events, creating happens-before edges for *all*
  analyzers, and participates in the cooperative scheduler's blocking.

Internal vs. application locks
------------------------------

The monitored collections are linearizable (think ConcurrentHashMap): their
implementations synchronize internally.  Those internal critical sections
must be visible to the *memory-level* analyses — FastTrack must see the
collection's own accesses as lock-protected, or it would report bogus races
inside a correct concurrent map — but they must **not** create
happens-before edges at the *library interface* level: the paper models
invocations as atomic transitions (Section 3.1), and an internal lock
shared by every operation would order all of them and mask every
commutativity race.  Internal lock identities are therefore tagged, and the
interface-level analyzers (RD2, direct, oracle feeds) skip tagged
acquire/release events.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Hashable, Tuple

from ..core.events import Event, EventKind
from .monitor import Monitor

__all__ = ["INTERNAL_LOCK_TAG", "internal_lock_id", "is_internal_lock",
           "interface_event", "SharedVar", "MonitoredLock"]

INTERNAL_LOCK_TAG = "$internal"


def internal_lock_id(obj_id: Hashable) -> Tuple[str, Hashable]:
    """The lock identity for a monitored collection's internal mutex."""
    return (INTERNAL_LOCK_TAG, obj_id)


def is_internal_lock(lock_id: Hashable) -> bool:
    return (isinstance(lock_id, tuple) and len(lock_id) == 2
            and lock_id[0] == INTERNAL_LOCK_TAG)


def interface_event(event: Event) -> bool:
    """Whether an event exists at the library-interface abstraction level.

    Interface-level analyzers (the commutativity detectors) see actions and
    *application* synchronization; memory accesses and internal-lock
    critical sections belong to the memory-level view only.
    """
    if event.kind in (EventKind.READ, EventKind.WRITE):
        return False
    if event.kind in (EventKind.ACQUIRE, EventKind.RELEASE):
        return not is_internal_lock(event.lock)
    return True


_var_serial = itertools.count()
_lock_serial = itertools.count()


class SharedVar:
    """An unsynchronized shared field (a plain Java field under RoadRunner).

    ``read``/``write`` report memory events and offer the scheduler a
    preemption point *before* the access, so check-then-act sequences over
    SharedVars genuinely interleave under the cooperative scheduler.
    """

    __slots__ = ("_monitor", "_value", "location")

    def __init__(self, monitor: Monitor, initial: Any = None,
                 name: str | None = None):
        self._monitor = monitor
        self._value = initial
        self.location = name if name is not None else f"var#{next(_var_serial)}"

    def read(self) -> Any:
        monitor = self._monitor
        monitor.preempt()
        if monitor.enabled:
            monitor.on_read(self.location)
        return self._value

    def write(self, value: Any) -> None:
        monitor = self._monitor
        monitor.preempt()
        if monitor.enabled:
            monitor.on_write(self.location)
        self._value = value

    def peek(self) -> Any:
        """Unmonitored read, for inspection outside the analyzed program
        (no event, no preemption point — not part of the modeled trace)."""
        return self._value

    def add(self, delta: Any) -> Any:
        """Unsynchronized read-modify-write (two accesses, one preemption
        window between them — the classic lost-update shape)."""
        current = self.read()
        updated = current + delta
        self.write(updated)
        return updated

    def __repr__(self) -> str:
        return f"SharedVar({self.location}={self._value!r})"


class MonitoredLock:
    """An application-level mutex visible to every analyzer.

    When a cooperative scheduler drives the program, blocking is delegated
    to it (the scheduler must not let a task spin while holding the global
    turn); without a scheduler a real ``threading.Lock`` provides mutual
    exclusion.
    """

    def __init__(self, monitor: Monitor, name: str | None = None):
        self._monitor = monitor
        self.lock_id = name if name is not None else f"lock#{next(_lock_serial)}"
        self._os_lock = threading.Lock()
        self._scheduler = None  # bound by Scheduler.adopt_lock

    def bind_scheduler(self, scheduler) -> None:
        self._scheduler = scheduler

    def acquire(self) -> None:
        if self._scheduler is not None:
            self._scheduler.lock_acquire(self.lock_id)
        else:
            self._os_lock.acquire()
        if self._monitor.enabled:
            self._monitor.on_acquire(self.lock_id)

    def release(self) -> None:
        if self._monitor.enabled:
            self._monitor.on_release(self.lock_id)
        if self._scheduler is not None:
            self._scheduler.lock_release(self.lock_id)
        else:
            self._os_lock.release()

    def __enter__(self) -> "MonitoredLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"MonitoredLock({self.lock_id})"
