"""Eraser: lockset-based race detection (secondary baseline).

Savage et al.'s Eraser checks a locking *discipline* rather than
happens-before: every shared location should be consistently protected by
at least one lock.  Per location, the detector refines a *candidate
lockset* — the intersection of the locks held at every access — through the
classic state machine::

    VIRGIN → EXCLUSIVE → (SHARED | SHARED_MODIFIED)

* EXCLUSIVE: only one thread has touched the location; no checking yet.
* SHARED: multiple threads, reads only since sharing; the lockset is
  refined but emptiness is not reported (read-sharing is benign).
* SHARED_MODIFIED: multiple threads with at least one write; an empty
  lockset triggers a :class:`~repro.core.races.LocksetWarning`.

Included as an ablation point: lockset analysis flags *potential* races
that never manifest in the observed interleaving (no happens-before
reasoning, so fork/join ordering does not exonerate accesses), which makes
an instructive contrast with both FastTrack and the commutativity detector
in the benchmark suite.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, List, Optional, Set

from ..core.events import Event, EventKind
from ..core.races import LocksetWarning
from ..core.vector_clock import Tid

__all__ = ["Eraser", "LocationState"]


class LocationState(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class _LocState:
    state: LocationState = LocationState.VIRGIN
    owner: Optional[Tid] = None
    lockset: Optional[FrozenSet[Hashable]] = None  # None = not yet refined
    reported: bool = False


class Eraser:
    """Lockset discipline checking over the runtime event stream."""

    def __init__(self, root: Tid = 0, keep_reports: bool = True, obs=None):
        self._held: Dict[Tid, Set[Hashable]] = {root: set()}
        self._locations: Dict[Hashable, _LocState] = {}
        self._keep_reports = keep_reports
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.warnings: List[LocksetWarning] = []
        self.warning_count = 0

    def process(self, event: Event) -> Optional[LocksetWarning]:
        kind = event.kind
        if kind is EventKind.ACQUIRE:
            self._held.setdefault(event.tid, set()).add(event.lock)
        elif kind is EventKind.RELEASE:
            self._held.setdefault(event.tid, set()).discard(event.lock)
        elif kind is EventKind.FORK:
            self._held.setdefault(event.peer, set())
        elif kind is EventKind.READ:
            return self._access(event.tid, event.location, is_write=False)
        elif kind is EventKind.WRITE:
            return self._access(event.tid, event.location, is_write=True)
        return None

    def _access(self, tid: Tid, location: Hashable,
                is_write: bool) -> Optional[LocksetWarning]:
        held = frozenset(self._held.setdefault(tid, set()))
        loc = self._locations.get(location)
        if loc is None:
            loc = _LocState()
            self._locations[location] = loc

        if loc.state is LocationState.VIRGIN:
            loc.state = LocationState.EXCLUSIVE
            loc.owner = tid
            loc.lockset = held
            return None
        if loc.state is LocationState.EXCLUSIVE:
            if tid == loc.owner:
                # Refine even while exclusive: the original Eraser discards
                # the first thread's locks at the sharing transition, which
                # misses inconsistent-lock patterns; keeping the owner's
                # refined lockset catches them.
                loc.lockset = (loc.lockset & held
                               if loc.lockset is not None else held)
                return None
            loc.lockset = (loc.lockset & held
                           if loc.lockset is not None else held)
            loc.state = (LocationState.SHARED_MODIFIED if is_write
                         else LocationState.SHARED)
        else:
            loc.lockset = (loc.lockset & held if loc.lockset is not None
                           else held)
            if is_write and loc.state is LocationState.SHARED:
                loc.state = LocationState.SHARED_MODIFIED

        if (loc.state is LocationState.SHARED_MODIFIED
                and loc.lockset is not None and not loc.lockset
                and not loc.reported):
            loc.reported = True   # one warning per location, as in Eraser
            warning = LocksetWarning(location=location,
                                     access="write" if is_write else "read",
                                     tid=tid)
            self.warning_count += 1
            if self._keep_reports:
                self.warnings.append(warning)
            return warning
        return None

    def run(self, events) -> List[LocksetWarning]:
        obs = self._obs
        if obs is None:
            for event in events:
                self.process(event)
            return self.warnings
        warnings0, count = self.warning_count, 0
        with obs.span("check"):
            for event in events:
                self.process(event)
                count += 1
        obs.add("events", count)
        obs.add("warnings", self.warning_count - warnings0)
        obs.gauge("locations", len(self._locations))
        return self.warnings
