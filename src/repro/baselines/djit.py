"""DJIT+: the full-vector-clock read/write race detector.

FastTrack's contribution was replacing most per-variable vector clocks of
DJIT+ (Pozniansky & Schuster) with O(1) epochs while reporting races on
exactly the same accesses.  This module is the unoptimized reference: every
variable keeps a full read vector clock and a full write vector clock.

It exists to *validate* our FastTrack — the property suite replays random
traces through both and requires identical racing accesses — and as the
slow end of an epochs-vs-vector-clocks micro-benchmark, mirroring how the
FastTrack paper itself evaluates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..core.errors import MonitorError
from ..core.events import Event, EventKind
from ..core.races import DataRace
from ..core.vector_clock import MutableVectorClock, Tid

__all__ = ["Djit"]


@dataclass
class _VarClocks:
    reads: MutableVectorClock = field(default_factory=MutableVectorClock)
    writes: MutableVectorClock = field(default_factory=MutableVectorClock)
    last_writer: Optional[Tid] = None


class Djit:
    """Vector-clock read/write race detection (the FastTrack baseline's
    own baseline)."""

    def __init__(self, root: Tid = 0, keep_reports: bool = True, obs=None):
        self._threads: Dict[Tid, MutableVectorClock] = {}
        self._locks: Dict[Hashable, MutableVectorClock] = {}
        self._vars: Dict[Hashable, _VarClocks] = {}
        self._keep_reports = keep_reports
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.races: List[DataRace] = []
        self.race_count = 0
        clock = MutableVectorClock()
        clock.inc_in_place(root)
        self._threads[root] = clock

    def _clock(self, tid: Tid) -> MutableVectorClock:
        try:
            return self._threads[tid]
        except KeyError:
            raise MonitorError(
                f"thread {tid!r} unknown to DJIT (missing fork?)") from None

    def process(self, event: Event) -> Optional[DataRace]:
        kind = event.kind
        if kind is EventKind.READ:
            return self._on_read(event.tid, event.location)
        if kind is EventKind.WRITE:
            return self._on_write(event.tid, event.location)
        if kind is EventKind.FORK:
            if event.peer in self._threads:
                raise MonitorError(f"thread {event.peer!r} forked twice")
            parent = self._clock(event.tid)
            child = parent.copy()
            child.inc_in_place(event.peer)
            self._threads[event.peer] = child
            parent.inc_in_place(event.tid)
        elif kind is EventKind.JOIN:
            self._clock(event.tid).join_in_place(self._clock(event.peer))
        elif kind is EventKind.ACQUIRE:
            held = self._locks.get(event.lock)
            if held is not None:
                self._clock(event.tid).join_in_place(held)
        elif kind is EventKind.RELEASE:
            clock = self._clock(event.tid)
            self._locks[event.lock] = clock.copy()
            clock.inc_in_place(event.tid)
        return None

    def _state(self, location: Hashable) -> _VarClocks:
        state = self._vars.get(location)
        if state is None:
            state = _VarClocks()
            self._vars[location] = state
        return state

    def _on_read(self, tid: Tid, location: Hashable) -> Optional[DataRace]:
        clock = self._clock(tid)
        state = self._state(location)
        race = None
        if not state.writes.leq(clock):
            race = self._report(location, "read", tid, clock, "write",
                                state.last_writer)
        state.reads.set_component(tid, clock[tid])
        return race

    def _on_write(self, tid: Tid, location: Hashable) -> Optional[DataRace]:
        clock = self._clock(tid)
        state = self._state(location)
        race = None
        if not state.writes.leq(clock):
            race = self._report(location, "write", tid, clock, "write",
                                state.last_writer)
        if not state.reads.leq(clock):
            reader = next((reader for reader, stamp in state.reads.items()
                           if stamp > clock[reader]), None)
            race = self._report(location, "write", tid, clock, "read",
                                reader)
        state.writes.set_component(tid, clock[tid])
        state.last_writer = tid
        return race

    def _report(self, location, access, tid, clock, conflicting,
                conflicting_tid) -> DataRace:
        race = DataRace(location=location, access=access, tid=tid,
                        clock=clock.freeze(), conflicting=conflicting,
                        conflicting_tid=conflicting_tid)
        self.race_count += 1
        if self._keep_reports:
            self.races.append(race)
        return race

    def run(self, events) -> List[DataRace]:
        obs = self._obs
        if obs is None:
            for event in events:
                self.process(event)
            return self.races
        races0, count = self.race_count, 0
        with obs.span("check"):
            for event in events:
                self.process(event)
                count += 1
        obs.add("events", count)
        obs.add("races", self.race_count - races0)
        obs.gauge("locations", len(self._vars))
        return self.races
