"""Baseline detectors: FastTrack (the paper's Table 2 comparator), the
DJIT+ full-vector-clock reference it optimizes, and an Eraser-style
lockset checker (extra ablation points)."""

from .djit import Djit
from .eraser import Eraser, LocationState
from .fasttrack import Epoch, FastTrack

__all__ = ["Djit", "Eraser", "LocationState", "Epoch", "FastTrack"]
