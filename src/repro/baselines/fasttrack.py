"""FastTrack: the low-level read/write race detector baseline.

A reimplementation of Flanagan & Freund's FASTTRACK (PLDI 2009), the
baseline of the paper's Table 2.  FastTrack computes the same happens-before
verdicts as a full vector-clock detector (DJIT+) but replaces most per-
variable clocks with *epochs* — a single ``(clock, tid)`` pair — exploiting
the observation that writes are totally ordered in race-free programs and
reads usually are too:

* ``W_x`` is always an epoch (last write);
* ``R_x`` is an epoch while reads stay ordered, and is *promoted* to a full
  read vector clock the first time two reads are concurrent, demoting back
  on the next write.

Thread/lock clocks follow the same Table 1 discipline as the rest of this
library (fork/join/acquire/release), with the FastTrack refinement that a
thread's clock is incremented after release so that later same-thread
accesses are distinguishable from the released clock.

The detector keeps processing after a race (updating state as if the access
were ordered), so race counts accumulate exactly as RoadRunner's FastTrack
tool reports them — giving the heavily redundant totals the paper shows
("1784 (26)").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple, Union

from ..core.errors import MonitorError
from ..core.events import Event, EventKind
from ..core.races import DataRace
from ..core.vector_clock import MutableVectorClock, Tid

__all__ = ["Epoch", "FastTrack"]


@dataclass(frozen=True)
class Epoch:
    """``c@t`` — a scalar timestamp of one thread."""

    clock: int
    tid: Tid

    def leq(self, vc: MutableVectorClock) -> bool:
        """``c@t ⪯ V  ⟺  c ≤ V(t)`` — the O(1) FastTrack comparison."""
        return self.clock <= vc[self.tid]

    def __str__(self) -> str:
        return f"{self.clock}@{self.tid}"


_EMPTY = Epoch(0, -1)


@dataclass
class _VarState:
    """Per-location state: write epoch plus adaptive read state."""

    write: Epoch = _EMPTY
    read_epoch: Epoch = _EMPTY
    read_vc: Optional[MutableVectorClock] = None  # non-None once promoted

    #: which threads raced here already — used only for reporting context
    last_writer: Optional[Tid] = None


class FastTrack:
    """Epoch-based dynamic read/write race detection.

    Feed the event stream with :meth:`process`; READ/WRITE events are
    checked, synchronization events maintain the clocks, ACTION events are
    ignored (method invocations are not memory accesses — the low-level
    instrumentation reports the accesses they perform separately).
    """

    def __init__(self, root: Tid = 0, keep_reports: bool = True, obs=None):
        self._threads: Dict[Tid, MutableVectorClock] = {}
        self._locks: Dict[Hashable, MutableVectorClock] = {}
        self._vars: Dict[Hashable, _VarState] = {}
        self._keep_reports = keep_reports
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.races: List[DataRace] = []
        self.race_count = 0
        self.checks = 0
        clock = MutableVectorClock()
        clock.inc_in_place(root)
        self._threads[root] = clock

    # -- clock bookkeeping -------------------------------------------------

    def _clock(self, tid: Tid) -> MutableVectorClock:
        try:
            return self._threads[tid]
        except KeyError:
            raise MonitorError(
                f"thread {tid!r} unknown to FastTrack (missing fork?)"
            ) from None

    def _epoch(self, tid: Tid) -> Epoch:
        return Epoch(self._threads[tid][tid], tid)

    # -- event processing -----------------------------------------------------

    def process(self, event: Event) -> Optional[DataRace]:
        kind = event.kind
        if kind is EventKind.READ:
            return self._on_read(event.tid, event.location)
        if kind is EventKind.WRITE:
            return self._on_write(event.tid, event.location)
        if kind is EventKind.FORK:
            self._on_fork(event.tid, event.peer)
        elif kind is EventKind.JOIN:
            self._on_join(event.tid, event.peer)
        elif kind is EventKind.ACQUIRE:
            self._on_acquire(event.tid, event.lock)
        elif kind is EventKind.RELEASE:
            self._on_release(event.tid, event.lock)
        return None

    def _on_fork(self, parent: Tid, child: Tid) -> None:
        if child in self._threads:
            raise MonitorError(f"thread {child!r} forked twice")
        parent_clock = self._clock(parent)
        child_clock = parent_clock.copy()
        child_clock.inc_in_place(child)
        self._threads[child] = child_clock
        parent_clock.inc_in_place(parent)

    def _on_join(self, waiter: Tid, child: Tid) -> None:
        self._clock(waiter).join_in_place(self._clock(child))

    def _on_acquire(self, tid: Tid, lock: Hashable) -> None:
        lock_clock = self._locks.get(lock)
        if lock_clock is not None:
            self._clock(tid).join_in_place(lock_clock)

    def _on_release(self, tid: Tid, lock: Hashable) -> None:
        clock = self._clock(tid)
        self._locks[lock] = clock.copy()
        clock.inc_in_place(tid)

    # -- access checking ----------------------------------------------------------

    def _state(self, location: Hashable) -> _VarState:
        state = self._vars.get(location)
        if state is None:
            state = _VarState()
            self._vars[location] = state
        return state

    def _on_read(self, tid: Tid, location: Hashable) -> Optional[DataRace]:
        clock = self._clock(tid)
        state = self._state(location)
        race: Optional[DataRace] = None

        # [FT READ SAME EPOCH] — O(1) fast path.
        me = self._epoch(tid)
        if state.read_vc is None and state.read_epoch == me:
            return None

        # write-read check
        self.checks += 1
        if not state.write.leq(clock):
            race = self._report(location, "read", tid, clock,
                                "write", state.write.tid)

        # update read state (adaptive)
        if state.read_vc is not None:
            state.read_vc.set_component(tid, me.clock)
        elif state.read_epoch.leq(clock) or state.read_epoch is _EMPTY:
            # [FT READ EXCLUSIVE]: previous read ordered before this one.
            state.read_epoch = me
        else:
            # [FT READ SHARE]: concurrent reads — promote to a vector clock.
            promoted = MutableVectorClock()
            prev = state.read_epoch
            promoted.set_component(prev.tid, prev.clock)
            promoted.set_component(me.tid, me.clock)
            state.read_vc = promoted
            state.read_epoch = _EMPTY
        return race

    def _on_write(self, tid: Tid, location: Hashable) -> Optional[DataRace]:
        clock = self._clock(tid)
        state = self._state(location)
        race: Optional[DataRace] = None

        me = self._epoch(tid)
        # [FT WRITE SAME EPOCH]
        if state.write == me:
            return None

        # write-write check
        self.checks += 1
        if not state.write.leq(clock):
            race = self._report(location, "write", tid, clock,
                                "write", state.write.tid)
        # read-write check
        if state.read_vc is not None:
            self.checks += 1
            if not state.read_vc.leq(clock):
                racer = self._some_concurrent_reader(state.read_vc, clock)
                race = self._report(location, "write", tid, clock,
                                    "read", racer)
            else:
                state.read_vc = None          # demote back to epochs
                state.read_epoch = _EMPTY
        elif state.read_epoch is not _EMPTY:
            self.checks += 1
            if not state.read_epoch.leq(clock):
                race = self._report(location, "write", tid, clock,
                                    "read", state.read_epoch.tid)

        state.write = me
        state.last_writer = tid
        return race

    @staticmethod
    def _some_concurrent_reader(read_vc: MutableVectorClock,
                                clock: MutableVectorClock) -> Optional[Tid]:
        for reader, stamp in read_vc.items():
            if stamp > clock[reader]:
                return reader
        return None

    def _report(self, location: Hashable, access: str, tid: Tid,
                clock: MutableVectorClock, conflicting: str,
                conflicting_tid) -> DataRace:
        race = DataRace(location=location, access=access, tid=tid,
                        clock=clock.freeze(), conflicting=conflicting,
                        conflicting_tid=conflicting_tid)
        self.race_count += 1
        if self._keep_reports:
            self.races.append(race)
        return race

    def run(self, events) -> List[DataRace]:
        obs = self._obs
        if obs is None:
            for event in events:
                self.process(event)
            return self.races
        races0, checks0, count = self.race_count, self.checks, 0
        with obs.span("check"):
            for event in events:
                self.process(event)
                count += 1
        obs.add("events", count)
        obs.add("conflict_checks", self.checks - checks0)
        obs.add("races", self.race_count - races0)
        obs.gauge("locations", len(self._vars))
        return self.races
