"""Observability for the detector pipeline: metrics, spans, profiling sinks.

The paper's evaluation (Table 2) attributes detector cost to its phases —
happens-before stamping, per-object conflict checks, report merging — and
per-(method, method) conflict structure.  This package makes that
attribution a first-class output of every pipeline component instead of a
one-off benchmark script:

* :class:`~repro.obs.registry.Registry` — counters, gauges, labeled
  breakdown counters and bucketed latency timers, with a disabled mode
  that the instrumented hot paths reduce to a single ``None`` check.
* :class:`~repro.obs.spans.SpanStream` — a JSONL stream of completed
  spans for offline flamegraph-style analysis.
* :mod:`~repro.obs.report` — the frozen ``--stats-json`` report schema,
  the human ``--stats`` table, and the timing scrubber the golden
  snapshot tests use.

Instrumentation conventions
---------------------------

Phase timers use the names ``stamp`` (happens-before stamping, Table 1 /
Algorithm 1's ``vc(e)``), ``check`` (Algorithm 1 phases 1-2), ``merge``
(the sharded pipeline's report merge) and ``fanout`` (wall-clock of the
parallel phase B).  Sequential components time phases by *sampling* —
every ``sample_interval``-th event is measured and recorded with weight
``sample_interval`` — so enabled-mode overhead stays within the CI smoke
gate's budget; per-run phases (the sharded pipeline, baseline replays)
are timed exactly.  Counters and per-object breakdowns are always exact;
the per-(method, method) *check* breakdown is sampled the same way the
timers are (race attribution per pair is exact — races are rare).
"""

from .registry import (DEFAULT_SAMPLE_INTERVAL, NULL_REGISTRY, Registry,
                       Timer)
from .report import (build_report, publish_detector_stats, render_table,
                     scrub_timings, write_report)
from .spans import SpanStream

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "NULL_REGISTRY",
    "Registry",
    "Timer",
    "SpanStream",
    "build_report",
    "publish_detector_stats",
    "render_table",
    "scrub_timings",
    "write_report",
]
