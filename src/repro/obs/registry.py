"""The metrics registry: counters, gauges, breakdowns, latency timers.

A :class:`Registry` is a plain bag of numeric aggregates with three
properties the pipeline depends on:

* **Mergeable.**  :meth:`Registry.absorb` is associative and commutative
  (counter/breakdown/timer sums, gauge maxima), so per-shard registries
  from worker processes can be folded together in any order and yield the
  same totals — the property suite in ``tests/obs`` checks exactly that.
  Registries are picklable (they hold only dicts of numbers), which is how
  the sharded analyzer ships them back over the pool pipe next to each
  shard's :class:`~repro.core.detector.DetectorStats`.
* **Cheap when enabled.**  Hot call sites grab the raw breakdown dicts
  once (:meth:`breakdown`) and increment them directly; timers are fed by
  sampled measurements recorded with a weight (see :meth:`Timer.record`),
  so per-event instrumentation stays under the smoke gate's 5% budget.
* **Free when disabled.**  ``Registry(enabled=False)`` (or the shared
  :data:`NULL_REGISTRY`) accepts every call and records nothing, and the
  instrumented components drop their obs handle entirely when handed a
  disabled registry — the hot paths then pay a single ``is None`` test.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Hashable, Optional

__all__ = ["DEFAULT_SAMPLE_INTERVAL", "NULL_REGISTRY", "Registry", "Timer"]

#: Every Nth event is timed (and pair-attributed) in sequential hot loops.
#: A sampled event costs roughly two orders of magnitude more than the
#: per-event fixed cost (timer records, point re-enumeration, AccessPoint
#: dict stores), so the interval is what keeps enabled-mode overhead inside
#: the benchmark gate's 5% budget with headroom for machine noise.
DEFAULT_SAMPLE_INTERVAL = 256


class Timer:
    """A latency aggregate: weighted totals plus a power-of-two histogram.

    ``record(ns, weight)`` adds one *measured* duration standing in for
    ``weight`` unmeasured ones (sampled instrumentation records with
    ``weight = sample_interval``; exact spans use weight 1).  ``count``
    and ``total_ns`` are therefore weighted estimates of the phase's
    invocation count and total time; ``samples`` counts raw measurements;
    ``min_ns``/``max_ns`` bound the raw measurements.  Buckets map a
    duration's ``int.bit_length()`` (i.e. ``floor(log2(ns)) + 1``) to a
    weighted count, giving a sparse log-scale latency histogram.
    """

    __slots__ = ("count", "samples", "total_ns", "min_ns", "max_ns",
                 "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.samples = 0
        self.total_ns = 0
        self.min_ns: Optional[int] = None
        self.max_ns: Optional[int] = None
        self.buckets: Dict[int, int] = {}

    def record(self, ns: int, weight: int = 1) -> None:
        self.count += weight
        self.samples += 1
        self.total_ns += ns * weight
        if self.min_ns is None or ns < self.min_ns:
            self.min_ns = ns
        if self.max_ns is None or ns > self.max_ns:
            self.max_ns = ns
        bucket = ns.bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + weight

    def absorb(self, other: "Timer") -> None:
        self.count += other.count
        self.samples += other.samples
        self.total_ns += other.total_ns
        if other.min_ns is not None:
            if self.min_ns is None or other.min_ns < self.min_ns:
                self.min_ns = other.min_ns
        if other.max_ns is not None:
            if self.max_ns is None or other.max_ns > self.max_ns:
                self.max_ns = other.max_ns
        for bucket, weight in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + weight

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "samples": self.samples,
            "total_ns": self.total_ns,
            "min_ns": self.min_ns,
            "max_ns": self.max_ns,
            "buckets": {str(k): v
                        for k, v in sorted(self.buckets.items())},
        }

    def __repr__(self) -> str:
        return (f"Timer(count={self.count}, samples={self.samples}, "
                f"total_ns={self.total_ns})")


class _Span:
    """Context manager timing one exact span into a registry timer."""

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "Registry", name: str):
        self._registry = registry
        self._name = name
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter_ns() - self._start
        self._registry.timer(self._name).record(duration)
        stream = self._registry.stream
        if stream is not None:
            stream.emit(self._name, duration)


class _NullSpan:
    """A reusable no-op span for disabled registries."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Registry:
    """One component's (or one shard's) metric aggregates.

    Parameters
    ----------
    enabled:
        When false every mutator is a no-op and :meth:`snapshot` stays
        empty; instrumented components treat a disabled registry exactly
        like ``obs=None``.
    sample_interval:
        Period of the sampled per-event instrumentation in the sequential
        hot loops (timers and the per-pair check breakdown).  Recorded in
        the snapshot so scaled estimates stay interpretable.
    stream:
        Optional :class:`~repro.obs.spans.SpanStream`; completed
        :meth:`span` contexts are appended to it as JSONL records.
    """

    def __init__(self, enabled: bool = True,
                 sample_interval: int = DEFAULT_SAMPLE_INTERVAL,
                 stream=None):
        if sample_interval < 1:
            raise ValueError(
                f"sample_interval must be >= 1, got {sample_interval}")
        self.enabled = enabled
        self.sample_interval = sample_interval
        self.stream = stream
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._breakdowns: Dict[str, Dict[Hashable, int]] = {}
        self._timers: Dict[str, Timer] = {}

    # -- mutators ----------------------------------------------------------

    def add(self, name: str, amount: int = 1) -> None:
        """Increment a plain counter."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a level; merging keeps the maximum observed."""
        if not self.enabled:
            return
        prior = self._gauges.get(name)
        if prior is None or value > prior:
            self._gauges[name] = value

    def breakdown(self, name: str) -> Dict[Hashable, int]:
        """The raw labeled-counter dict — hot sites increment it directly.

        Disabled registries hand out throwaway dicts so call sites need no
        conditional (anything written to one is discarded).
        """
        if not self.enabled:
            return {}
        table = self._breakdowns.get(name)
        if table is None:
            table = self._breakdowns[name] = {}
        return table

    def count_in(self, name: str, key: Hashable, amount: int = 1) -> None:
        """Convenience increment into a breakdown (cold call sites)."""
        if not self.enabled:
            return
        table = self.breakdown(name)
        table[key] = table.get(key, 0) + amount

    def timer(self, name: str) -> Timer:
        """The named :class:`Timer`, created on first use."""
        if not self.enabled:
            return Timer()
        timer = self._timers.get(name)
        if timer is None:
            timer = self._timers[name] = Timer()
        return timer

    def span(self, name: str):
        """``with registry.span("stamp"): ...`` — an exact timed span."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name)

    # -- merging -----------------------------------------------------------

    def absorb(self, other: "Registry") -> None:
        """Fold another registry's aggregates into this one.

        Associative and commutative: counters, breakdowns and timers sum;
        gauges keep the maximum.  Disabled registries absorb nothing and
        contribute nothing.
        """
        if not self.enabled or not other.enabled:
            return
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            self.gauge(name, value)
        for name, table in other._breakdowns.items():
            mine = self.breakdown(name)
            for key, value in table.items():
                mine[key] = mine.get(key, 0) + value
        for name, timer in other._timers.items():
            self.timer(name).absorb(timer)

    # -- export ------------------------------------------------------------

    @staticmethod
    def _key_str(key: Hashable) -> str:
        if isinstance(key, tuple):
            return "×".join(Registry._key_str(part) for part in key)
        return str(key)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able, deterministically ordered view of the aggregates.

        Breakdown keys are stringified (tuples join with ``×``) and every
        mapping is key-sorted, so equal registries snapshot to equal JSON.
        """
        if not self.enabled:
            return {"enabled": False}
        return {
            "enabled": True,
            "sample_interval": self.sample_interval,
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "breakdowns": {
                name: dict(sorted(
                    (self._key_str(key), value)
                    for key, value in table.items()))
                for name, table in sorted(self._breakdowns.items())
            },
            "timers": {name: timer.snapshot()
                       for name, timer in sorted(self._timers.items())},
        }

    def __getstate__(self):
        # The span stream (an open file) stays with the owning process;
        # worker registries travel as pure aggregates.
        state = self.__dict__.copy()
        state["stream"] = None
        return state

    def __repr__(self) -> str:
        if not self.enabled:
            return "Registry(enabled=False)"
        return (f"Registry({len(self._counters)} counters, "
                f"{len(self._breakdowns)} breakdowns, "
                f"{len(self._timers)} timers)")


#: A shared always-disabled registry: pass it anywhere an ``obs`` argument
#: is expected to keep call sites unconditional.
NULL_REGISTRY = Registry(enabled=False)
