"""JSONL span streaming for offline flamegraph-style analysis.

A :class:`SpanStream` appends one JSON object per completed span::

    {"name": "stamp", "pid": 1234, "ts_ns": 1717..., "dur_ns": 52100}

``ts_ns`` is the span's *start* in epoch nanoseconds (wall clock, so
spans from different processes of one run line up on a shared axis);
``dur_ns`` is measured with the monotonic clock.  The stream is line
buffered and append-only — crash-truncated files lose at most the last
line, and concatenating the streams of several runs stays valid JSONL.

Only coarse per-run spans are streamed (trace load, the sharded
pipeline's stamp/fanout/merge, baseline replays, report rendering); the
sampled per-event phase timings are aggregated in the registry's timers
instead, where their volume belongs.
"""

from __future__ import annotations

import json
import os
import time
from typing import IO, Optional, Union

__all__ = ["SpanStream"]


class SpanStream:
    """Append completed spans to a JSONL sink.

    Accepts either a path (opened for append, closed by :meth:`close`)
    or an already-open text stream (left open — the caller owns it).
    """

    def __init__(self, sink: Union[str, "os.PathLike[str]", IO[str]]):
        if hasattr(sink, "write"):
            self._stream: IO[str] = sink  # type: ignore[assignment]
            self._owned = False
        else:
            self._stream = open(sink, "a", encoding="utf-8")
            self._owned = True

    def emit(self, name: str, dur_ns: int,
             ts_ns: Optional[int] = None) -> None:
        """Record one completed span."""
        record = {
            "name": name,
            "pid": os.getpid(),
            "ts_ns": (time.time_ns() - dur_ns) if ts_ns is None else ts_ns,
            "dur_ns": dur_ns,
        }
        self._stream.write(json.dumps(record) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._owned:
            self._stream.close()

    def __enter__(self) -> "SpanStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
