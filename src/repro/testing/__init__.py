"""Test-support machinery shipped with the library.

Lives under ``repro`` (rather than ``tests/``) because pieces of it must be
importable *inside worker processes* — a fault plan wrapping the shard
worker has to unpickle in a ``spawn``-started child, where the test tree is
not on ``sys.path``.  Nothing here is imported by the analysis pipeline
itself except behind explicit opt-in hooks (the ``REPRO_FAULT_PLAN`` and
``REPRO_CHECKPOINT_KILL_AFTER`` environment variables).
"""

from .faults import (FaultPlan, FaultSpec, FaultyAnalyzer, FaultyWorker,
                     Unpicklable, checkpoint_kill_hook, truncate_file)

__all__ = ["FaultPlan", "FaultSpec", "FaultyAnalyzer", "FaultyWorker",
           "Unpicklable", "checkpoint_kill_hook", "truncate_file"]
