"""Consistent synthetic workloads for service tests, chaos and soak runs.

The chaos harness (:mod:`repro.service.chaos`) and the soak benchmark
need the same thing the test-suite's ``tests/support.py`` provides —
deterministic multi-object traces whose recorded return values are
realizable at their linearization points — but from *inside* the
installed package, where CI jobs and operators can reach them without a
checkout of the test tree.  The generator here is the same
program-expansion idea: a compact integer "program" (seed, object kinds,
thread count, op count, lock rate) deterministically expands through the
bundled executable semantics into a consistent trace.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from ..core.events import Action
from ..core.serialize import dumps_trace
from ..core.trace import Trace, TraceBuilder
from ..specs import bundled_objects

__all__ = ["WORKLOAD_KINDS", "tenant_program", "build_tenant_trace",
           "tenant_trace_text"]

WORKLOAD_KINDS: Tuple[str, ...] = ("dictionary", "set", "counter",
                                   "register", "msetlog", "accumulator",
                                   "queue")


def tenant_program(seed: int, kinds: Tuple[str, ...] = WORKLOAD_KINDS,
                   max_objects: int = 3, max_threads: int = 4,
                   min_ops: int = 10, max_ops: int = 60):
    """A deterministic multi-object trace program for one tenant."""
    rng = random.Random(seed)
    count = rng.randint(1, max_objects)
    object_kinds = tuple(rng.choice(kinds) for _ in range(count))
    threads = rng.randint(1, max_threads)
    ops = rng.randint(min_ops, max_ops)
    lock_rate = rng.choice((0.0, 0.3, 1.0))
    join_all = rng.random() < 0.6
    return (object_kinds, seed, threads, ops, lock_rate, join_all)


def build_tenant_trace(program, registry=None
                       ) -> Tuple[Trace, Dict[str, str]]:
    """Expand a program into ``(stamped trace, name->kind bindings)``.

    Every object evolves its own semantics state, so all recorded return
    values are consistent — the detector never sees an unrealizable
    history (those are the quarantine tests' job, built by hand).
    """
    object_kinds, seed, threads, ops, lock_rate, join_all = program
    registry = registry or bundled_objects()
    bindings = {f"o{i}": kind for i, kind in enumerate(object_kinds)}
    semantics = {name: registry[kind].semantics()
                 for name, kind in bindings.items()}
    states = {name: sem.initial_state() for name, sem in semantics.items()}
    names = list(bindings)
    rng = random.Random(seed)
    builder = TraceBuilder(root=0)
    worker_tids = list(range(1, threads + 1))
    for tid in worker_tids:
        builder.fork(0, tid)
    remaining = {tid: ops for tid in worker_tids}
    while any(remaining.values()):
        tid = rng.choice([t for t, n in remaining.items() if n])
        name = rng.choice(names)
        use_lock = rng.random() < lock_rate
        if use_lock:
            builder.acquire(tid, "L")
        method, args = semantics[name].sample_invocation(rng)
        states[name], returns = semantics[name].apply(states[name],
                                                      method, args)
        builder.action(tid, Action(name, method, args, returns))
        if use_lock:
            builder.release(tid, "L")
        remaining[tid] -= 1
    if join_all:
        builder.join_all(0, worker_tids)
        name = rng.choice(names)
        method, args = semantics[name].sample_invocation(rng)
        states[name], returns = semantics[name].apply(states[name],
                                                      method, args)
        builder.action(0, Action(name, method, args, returns))
    return builder.build(), bindings


def tenant_trace_text(seed: int, **program_kw
                      ) -> Tuple[str, Dict[str, str], Trace]:
    """Convenience: ``(JSONL text, bindings, trace)`` for one seed."""
    trace, bindings = build_tenant_trace(tenant_program(seed, **program_kw))
    return dumps_trace(trace), bindings, trace
