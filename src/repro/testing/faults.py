"""Deterministic fault injection for the robustness test suite.

The fault-tolerance layer's central claim — recovered runs produce
*exactly* the fault-free output — is only testable if failures can be
provoked on demand, at a precise shard and attempt, reproducibly.  This
module provides those failure points:

* :class:`FaultPlan` / :class:`FaultSpec` — a per-shard schedule of
  injected failures (worker raises, dies, hangs, or returns an unpicklable
  result), built explicitly, from a seed (:meth:`FaultPlan.seeded`), or
  from the ``REPRO_FAULT_PLAN`` environment variable so faults can be
  injected through the real CLI in a subprocess.
* :class:`FaultyAnalyzer` — an analyzer that raises on ``process``, for
  the monitor's isolation policies.
* :func:`truncate_file` — corrupts a checkpoint the way a crash mid-write
  or a bad disk would.
* :func:`checkpoint_kill_hook` — ``SIGKILL``s the process right after the
  N-th checkpoint write (``REPRO_CHECKPOINT_KILL_AFTER``), so resume tests
  exercise a genuinely killed run rather than a polite exception.

Determinism rules: a fault fires based only on ``(shard index, attempt
number)``, both supplied by the supervisor, so a plan replays identically
across runs and start methods.  Faults fire **only inside pool worker
processes** (``multiprocessing.parent_process() is not None``): the
supervisor's in-process fallback and the inline sharding path stay clean,
which is precisely the recovery behavior under test — and it keeps an
over-scheduled ``exit`` fault from killing the test runner itself.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import random
import signal
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..runtime.analyzers import Analyzer

__all__ = ["KINDS", "FaultSpec", "FaultPlan", "FaultyWorker", "Unpicklable",
           "FaultyAnalyzer", "truncate_file", "checkpoint_kill_hook",
           "PLAN_ENV", "KILL_ENV"]

#: Injectable shard-worker failure modes.
KINDS = ("raise", "exit", "hang", "bad-result")

PLAN_ENV = "REPRO_FAULT_PLAN"
KILL_ENV = "REPRO_CHECKPOINT_KILL_AFTER"


class Unpicklable:
    """An object that refuses to cross a process boundary.

    Returned by a ``bad-result`` fault: the pool worker computes it fine,
    the result pipe cannot encode it, and the parent sees
    ``MaybeEncodingError`` — the exact failure shape of a detector whose
    race reports captured something unpicklable.
    """

    def __reduce__(self):
        raise pickle.PicklingError("injected unpicklable result")


@dataclass(frozen=True)
class FaultSpec:
    """How one shard misbehaves.

    The fault fires on attempts ``0 .. times-1`` and the shard behaves
    normally from attempt ``times`` on, so ``times`` directly selects the
    recovery path: ``times <= max_retries`` recovers via pool retry,
    anything larger pushes the shard to the in-process fallback.
    ``seconds`` is the ``hang`` sleep; ``exit_code`` the ``exit`` status.
    """

    kind: str
    times: int = 1
    seconds: float = 30.0
    exit_code: int = 3

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {KINDS}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of shard faults.

    ``shards`` maps shard index to its :class:`FaultSpec`; ``default``
    (the plan's ``"*"`` entry) applies to every shard without an explicit
    spec.  Wrap the shard worker with :meth:`wrap` — the supervisor does
    this automatically for ``SupervisorConfig(wrap=plan.wrap)`` or when
    ``REPRO_FAULT_PLAN`` carries :meth:`to_env` output.
    """

    shards: Tuple[Tuple[int, FaultSpec], ...] = ()
    default: Optional[FaultSpec] = None

    @staticmethod
    def build(shards: Dict[int, FaultSpec],
              default: Optional[FaultSpec] = None) -> "FaultPlan":
        """Construct from a plain dict (the natural literal in tests)."""
        return FaultPlan(shards=tuple(sorted(shards.items())),
                         default=default)

    def spec_for(self, index: int) -> Optional[FaultSpec]:
        for shard, spec in self.shards:
            if shard == index:
                return spec
        return self.default

    def has_faults(self) -> bool:
        return bool(self.shards) or self.default is not None

    def wrap(self, worker: Callable) -> "FaultyWorker":
        return FaultyWorker(worker, self)

    @staticmethod
    def seeded(seed: int, shards: int, retries: int,
               kinds: Sequence[str] = ("raise", "bad-result"),
               rate: float = 0.6, hang_seconds: float = 8.0) -> "FaultPlan":
        """A reproducible random plan over ``shards`` shard indexes.

        Each shard independently faults with probability ``rate``; fault
        counts range over ``1 .. retries + 2`` so seeds exercise both
        recovery paths (retry success and fallback).  The default
        ``kinds`` excludes ``exit`` and ``hang`` — those take a timeout
        each to detect, so the differential suite schedules them in
        dedicated cases rather than letting a seed stack several.
        """
        rng = random.Random(seed)
        specs: Dict[int, FaultSpec] = {}
        for index in range(shards):
            if rng.random() < rate:
                specs[index] = FaultSpec(
                    kind=rng.choice(list(kinds)),
                    times=rng.randint(1, retries + 2),
                    seconds=hang_seconds)
        return FaultPlan.build(specs)

    # -- environment transport (for CLI-level differential tests) ---------

    def to_env(self) -> str:
        """Serialize for ``REPRO_FAULT_PLAN``."""
        def encode(spec: FaultSpec) -> Dict:
            return {"kind": spec.kind, "times": spec.times,
                    "seconds": spec.seconds, "exit_code": spec.exit_code}
        payload: Dict[str, Dict] = {
            str(shard): encode(spec) for shard, spec in self.shards}
        if self.default is not None:
            payload["*"] = encode(self.default)
        return json.dumps({"shards": payload})

    @staticmethod
    def from_env(var: str = PLAN_ENV) -> "FaultPlan":
        """Parse a plan from the environment (raises on malformed JSON —
        a silently ignored fault plan would fake a green differential)."""
        raw = os.environ.get(var, "")
        if not raw:
            return FaultPlan()
        data = json.loads(raw)
        specs: Dict[int, FaultSpec] = {}
        default: Optional[FaultSpec] = None
        for key, entry in data.get("shards", {}).items():
            spec = FaultSpec(
                kind=entry["kind"], times=int(entry.get("times", 1)),
                seconds=float(entry.get("seconds", 30.0)),
                exit_code=int(entry.get("exit_code", 3)))
            if key == "*":
                default = spec
            else:
                specs[int(key)] = spec
        return FaultPlan.build(specs, default)


class FaultyWorker:
    """A supervised worker wrapped with a :class:`FaultPlan`.

    Picklable whenever the wrapped worker is (the shard worker is a
    module-level function), so it ships to pool children under ``fork``
    and ``spawn`` alike.  The attempt number comes from the supervisor, so
    "fail twice then succeed" needs no cross-process shared state.
    """

    def __init__(self, worker: Callable, plan: FaultPlan):
        self._worker = worker
        self._plan = plan

    def __call__(self, index: int, payload, attempt: int):
        spec = self._plan.spec_for(index)
        if (spec is not None and attempt < spec.times
                and multiprocessing.parent_process() is not None):
            if spec.kind == "raise":
                raise RuntimeError(
                    f"injected fault: shard {index} attempt {attempt}")
            if spec.kind == "exit":
                os._exit(spec.exit_code)
            if spec.kind == "hang":
                time.sleep(spec.seconds)
            elif spec.kind == "bad-result":
                return Unpicklable()
        return self._worker(index, payload, attempt)


class FaultyAnalyzer(Analyzer):
    """An analyzer whose ``process`` raises — fuel for isolation tests.

    Raises on the first ``times`` events (every event when ``times`` is
    None).  Event and fault counts are exposed so tests can assert the
    monitor kept dispatching, stopped dispatching after quarantine, etc.
    """

    name = "faulty"

    def __init__(self, times: Optional[int] = None):
        self.times = times
        self.calls = 0
        self.raised = 0

    def process(self, event) -> None:
        self.calls += 1
        if self.times is None or self.raised < self.times:
            self.raised += 1
            raise RuntimeError(f"injected analyzer fault #{self.raised}")


def truncate_file(path: str, keep_bytes: Optional[int] = None,
                  drop_bytes: int = 16) -> None:
    """Corrupt a file by truncation (to ``keep_bytes``, or dropping the
    last ``drop_bytes``) — the footprint of a crash mid-write."""
    size = os.path.getsize(path)
    keep = keep_bytes if keep_bytes is not None else max(0, size - drop_bytes)
    with open(path, "r+b") as handle:
        handle.truncate(keep)


def checkpoint_kill_hook(var: str = KILL_ENV
                         ) -> Optional[Callable[[int], None]]:
    """An ``after_write`` hook that SIGKILLs the process, or None.

    With ``REPRO_CHECKPOINT_KILL_AFTER=N`` set, the returned hook kills
    the process the moment the N-th checkpoint write completes —
    simulating the machine dying mid-run with a complete checkpoint on
    disk, the exact situation ``--resume-from`` exists for.
    """
    raw = os.environ.get(var, "")
    if not raw:
        return None
    threshold = int(raw)

    def kill_after(writes: int) -> None:
        if writes >= threshold:
            os.kill(os.getpid(), signal.SIGKILL)

    return kill_after
