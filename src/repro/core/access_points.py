"""Access point representations ``⟨Xo, ηo, Co⟩`` (Section 4.2).

An access point representation captures a commutativity specification in a
form the dynamic analysis can execute:

* ``Xo`` — a set of access points,
* ``ηo : Act_o -> P(Xo)`` — the finite set of points *touched* by an action,
* ``Co ⊆ Xo × Xo`` — a symmetric conflict relation.

The representation *represents* a logical specification ``Φ`` when
``(ηo(a) × ηo(b)) ∩ Co = ∅  ⟺  ϕ(a,b)`` (Definition 4.5).

Finite *schema* factoring
-------------------------

``Xo`` is typically infinite — the dictionary of Fig. 7 has a point
``o:w:k`` for every possible key ``k``.  We factor each point into a finite
*schema* (``w``, ``r``, ``size``, ``resize``, or a translated
``(method, β, slot)`` tuple) plus an optional runtime *value* (the key).
Conflicts are declared between schemas; concrete value-carrying points
additionally require equal values.  This factoring is what makes ``Co(pt)``
enumerable: the candidates conflicting with a concrete point are the
finitely many conflicting schemas instantiated at the *same* value, which is
exactly how Theorem 6.6's bounded-conflict property manifests operationally.

A representation is *bounded* when every declared schema conflict joins two
value-carrying schemas or two plain schemas.  A conflict between a plain
schema and a value-carrying one (e.g. the naive representation where
``size`` conflicts with infinitely many ``put`` points) makes ``Co(pt)``
infinite, and the detector must fall back to scanning ``active(o)``
(Section 5.4).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import (Any, Callable, Dict, FrozenSet, Hashable, Iterable,
                    Iterator, List, Mapping, Optional, Sequence, Tuple)

from .errors import SpecificationError
from .events import Action, ObjectId

__all__ = [
    "AccessPoint",
    "AccessPointRepresentation",
    "SchemaRepresentation",
    "NaiveRepresentation",
    "representations_equivalent",
]

SchemaId = Hashable


@dataclass(frozen=True)
class AccessPoint:
    """A concrete access point: schema instantiated on an object.

    ``value`` is ``None`` for plain (``ds``-like) schemas and carries the
    witnessed argument/return value for value-carrying schemas (the ``k`` of
    ``o:w:k``).
    """

    obj: ObjectId
    schema: SchemaId
    value: Any = None

    def __hash__(self) -> int:
        # Identity-cached: the detector probes ``active(o)``/``point_clock``
        # with the same interned instances over and over, and re-hashing a
        # three-field dataclass per probe is measurable on the hot path.
        # Same tuple the generated __hash__ uses, so cached and uncached
        # instances collide correctly.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash((self.obj, self.schema, self.value))
            object.__setattr__(self, "_hash", h)
            return h

    def __reduce__(self):
        # Rebuild from fields: the lazily cached hash must never cross an
        # interpreter boundary (string hashing is salted per process, so a
        # shipped cache would poison dict lookups in spawned workers).
        return (AccessPoint, (self.obj, self.schema, self.value))

    def __str__(self) -> str:
        if self.value is None:
            return f"{self.obj}:{self.schema}"
        return f"{self.obj}:{self.schema}:{self.value!r}"


class AccessPointRepresentation(ABC):
    """The ``⟨Xo, ηo, Co⟩`` interface consumed by the detector.

    Subclasses must implement ``points_of`` (ηo) and ``conflicts`` (Co
    membership).  Bounded representations additionally enumerate
    ``conflicting_candidates`` — the finite ``Co(pt)`` — enabling the
    detector's constant-time ENUMERATE strategy.
    """

    #: human-readable name of the object kind this representation covers
    kind: str = "object"

    @abstractmethod
    def points_of(self, action: Action) -> Tuple[AccessPoint, ...]:
        """``ηo(a)`` — the access points touched by ``action``."""

    @abstractmethod
    def conflicts(self, pt1: AccessPoint, pt2: AccessPoint) -> bool:
        """``(pt1, pt2) ∈ Co`` — must be symmetric."""

    @property
    def bounded(self) -> bool:
        """Whether ``Co(pt)`` is finite and enumerable for every point."""
        return False

    def conflicting_candidates(self, pt: AccessPoint) -> Iterator[AccessPoint]:
        """Enumerate ``Co(pt)``.

        Only meaningful when :attr:`bounded` is true; the default raises to
        keep unbounded representations honest.
        """
        raise SpecificationError(
            f"{type(self).__name__} has an unbounded conflict relation; "
            f"Co(pt) cannot be enumerated (use the SCAN strategy)")


class SchemaRepresentation(AccessPointRepresentation):
    """A representation given by finite schema tables.

    Parameters
    ----------
    kind:
        Name of the object kind (``"dictionary"``, ``"set"``...).
    value_schemas:
        Schemas whose concrete points carry a value.
    plain_schemas:
        Schemas whose concrete points carry no value.
    conflict_pairs:
        Schema-level conflicts; symmetry is closed automatically, and a
        schema may conflict with itself.  Pairs must join two value schemas
        or two plain schemas for the representation to be bounded.
    touches:
        The ηo at schema level: maps an action to ``(schema, value)`` pairs
        (``value`` must be ``None`` exactly for plain schemas).
    """

    def __init__(
        self,
        kind: str,
        value_schemas: Iterable[SchemaId],
        plain_schemas: Iterable[SchemaId],
        conflict_pairs: Iterable[Tuple[SchemaId, SchemaId]],
        touches: Callable[[Action], Iterable[Tuple[SchemaId, Any]]],
    ):
        self.kind = kind
        self._value_schemas: FrozenSet[SchemaId] = frozenset(value_schemas)
        self._plain_schemas: FrozenSet[SchemaId] = frozenset(plain_schemas)
        overlap = self._value_schemas & self._plain_schemas
        if overlap:
            raise SpecificationError(
                f"schemas declared both value-carrying and plain: {overlap}")
        self._touches = touches
        # Insertion-ordered dict-sets: candidate enumeration order must be
        # declaration order, not hash order — an unpickled set rehashes, so
        # worker processes would otherwise enumerate (and hence report
        # races) in a different order than the sequential detector.
        self._conflicts: Dict[SchemaId, Dict[SchemaId, None]] = {}
        self._bounded = True
        for left, right in conflict_pairs:
            self._add_conflict(left, right)

    def _add_conflict(self, left: SchemaId, right: SchemaId) -> None:
        known = self._value_schemas | self._plain_schemas
        for schema in (left, right):
            if schema not in known:
                raise SpecificationError(
                    f"conflict references unknown schema {schema!r}")
        if (left in self._value_schemas) != (right in self._value_schemas):
            # A plain point would conflict with points at *every* value.
            self._bounded = False
        self._conflicts.setdefault(left, {})[right] = None
        self._conflicts.setdefault(right, {})[left] = None

    # -- introspection -------------------------------------------------------

    @property
    def schemas(self) -> FrozenSet[SchemaId]:
        return self._value_schemas | self._plain_schemas

    def carries_value(self, schema: SchemaId) -> bool:
        return schema in self._value_schemas

    def schema_conflicts(self, schema: SchemaId) -> FrozenSet[SchemaId]:
        """The schemas conflicting with ``schema`` (Theorem 6.6's bound)."""
        return frozenset(self._conflicts.get(schema, ()))

    def conflict_peers(self, schema: SchemaId) -> Tuple[SchemaId, ...]:
        """The conflicting schemas in *declaration order*.

        Unlike :meth:`schema_conflicts` (an unordered frozenset), the tuple
        preserves the order :meth:`conflicting_candidates` enumerates —
        which cross-process race-report determinism relies on.  This is the
        order compiled check plans bake in.
        """
        return tuple(self._conflicts.get(schema, ()))

    @property
    def touches(self) -> Callable[[Action], Iterable[Tuple[SchemaId, Any]]]:
        """The schema-level ηo callable (consumed by compiled check plans)."""
        return self._touches

    def max_conflict_degree(self) -> int:
        """The bound of Theorem 6.6: max |Co(pt)| over all points."""
        if not self._conflicts:
            return 0
        return max(len(peers) for peers in self._conflicts.values())

    # -- the ⟨Xo, ηo, Co⟩ interface -------------------------------------------

    def points_of(self, action: Action) -> Tuple[AccessPoint, ...]:
        points: List[AccessPoint] = []
        for schema, value in self._touches(action):
            if schema in self._value_schemas:
                if value is None:
                    raise SpecificationError(
                        f"schema {schema!r} carries a value but ηo supplied "
                        f"none for {action}")
            elif schema in self._plain_schemas:
                if value is not None:
                    raise SpecificationError(
                        f"plain schema {schema!r} was given value {value!r} "
                        f"for {action}")
            else:
                raise SpecificationError(
                    f"ηo touched unknown schema {schema!r} for {action}")
            points.append(AccessPoint(action.obj, schema, value))
        return tuple(points)

    def conflicts(self, pt1: AccessPoint, pt2: AccessPoint) -> bool:
        if pt1.obj != pt2.obj:
            return False
        if pt2.schema not in self._conflicts.get(pt1.schema, ()):
            return False
        both_valued = (pt1.schema in self._value_schemas
                       and pt2.schema in self._value_schemas)
        if both_valued:
            return pt1.value == pt2.value
        return True

    @property
    def bounded(self) -> bool:
        return self._bounded

    def conflicting_candidates(self, pt: AccessPoint) -> Iterator[AccessPoint]:
        if not self._bounded:
            return super().conflicting_candidates(pt)
        carries = pt.schema in self._value_schemas
        for peer in self._conflicts.get(pt.schema, ()):
            if carries:
                yield AccessPoint(pt.obj, peer, pt.value)
            else:
                yield AccessPoint(pt.obj, peer, None)

    def __repr__(self) -> str:
        return (f"SchemaRepresentation({self.kind!r}, "
                f"{len(self.schemas)} schemas, "
                f"max degree {self.max_conflict_degree()})")


class NaiveRepresentation(AccessPointRepresentation):
    """The strawman of Section 5.4: one access point per action.

    ``ηo(a) = {a}`` and two points conflict iff the underlying actions do not
    commute per the specification.  ``Co(pt)`` is infinite (e.g. ``size``
    conflicts with every resizing ``put``), so the detector is forced into
    its linear SCAN strategy — this is the representation the scaling bench
    uses as the slow baseline.
    """

    def __init__(self, kind: str,
                 commutes: Callable[[Action, Action], bool]):
        self.kind = kind
        self._commutes = commutes

    def points_of(self, action: Action) -> Tuple[AccessPoint, ...]:
        # The schema is the action sans object (method + values); the object
        # lives in AccessPoint.obj.  No value component is needed since the
        # schema itself is fully concrete.
        schema = (action.method, action.args, action.returns)
        return (AccessPoint(action.obj, schema),)

    def conflicts(self, pt1: AccessPoint, pt2: AccessPoint) -> bool:
        if pt1.obj != pt2.obj:
            return False
        a = Action(pt1.obj, pt1.schema[0], pt1.schema[1], pt1.schema[2])
        b = Action(pt2.obj, pt2.schema[0], pt2.schema[1], pt2.schema[2])
        return not self._commutes(a, b)

    @property
    def bounded(self) -> bool:
        return False


def representations_equivalent(
    rep1: AccessPointRepresentation,
    rep2: AccessPointRepresentation,
    actions: Sequence[Action],
) -> Optional[Tuple[Action, Action]]:
    """Check Definition 4.5 agreement of two representations on a sample.

    For every pair of sample actions, both representations must agree on
    whether the touched point sets intersect the conflict relation.  Returns
    ``None`` on agreement, or the first disagreeing pair — handy both in the
    translator's test suite (translated-vs-handwritten dictionary) and for
    users validating hand-written representations against specifications.
    """
    # ηo is evaluated once per action up front; recomputing points_of(b)
    # inside the pair loop made this O(n²) ηo evaluations for n actions.
    points1 = [rep1.points_of(a) for a in actions]
    points2 = [rep2.points_of(a) for a in actions]
    for i, a in enumerate(actions):
        pts_a1 = points1[i]
        pts_a2 = points2[i]
        for j, b in enumerate(actions):
            clash1 = any(rep1.conflicts(p, q)
                         for p in pts_a1 for q in points1[j])
            clash2 = any(rep2.conflicts(p, q)
                         for p in pts_a2 for q in points2[j])
            if clash1 != clash2:
                return (a, b)
    return None
