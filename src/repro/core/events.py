"""Actions and trace events (the execution model of Section 3.1).

An *action* ``o.m(~u)/~v`` is a method invocation on a shared object ``o``
with arguments ``~u`` and return values ``~v``; the paper treats invocations
as atomic transitions (the object is assumed linearizable).  An *event* is an
occurrence ``τ : a`` of an action by thread ``τ`` at a position in a trace.

Besides action events this module models the synchronization events of
Table 1 (``fork``, ``join``, ``acq``, ``rel``), low-level ``read``/``write``
memory events consumed by the FastTrack/Eraser baselines (RD2 never looks
at them), and ``begin``/``commit`` transaction boundaries consumed by the
atomicity analyses.  The paper's ``joinall`` is a sequence of ``join``
events (see :meth:`repro.core.trace.TraceBuilder.join_all`).
"""

from __future__ import annotations

import enum
import pickle
import struct
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple

from .vector_clock import Tid, VectorClock

__all__ = [
    "NIL",
    "Nil",
    "ObjectId",
    "Action",
    "EventKind",
    "Event",
    "action_event",
    "fork_event",
    "join_event",
    "acquire_event",
    "release_event",
    "begin_event",
    "commit_event",
    "read_event",
    "write_event",
    "pack_stamped_action",
    "unpack_stamped_action",
    "RECORD_STRUCT",
    "RECORD_SIZE",
    "REC_ACTION",
    "REC_INTERN",
    "REC_OBJECT",
    "REC_BASE",
    "REC_END",
    "FLAG_SPILL",
    "FLAG_WIDE",
    "encode_value",
    "decode_value",
]


class Nil:
    """The paper's ``nil`` no-value (distinct from Python's ``None``).

    A dictionary maps absent keys to ``nil``; ``put`` returns ``nil`` when it
    inserts a fresh key.  Using a dedicated singleton keeps ``None`` free to
    be an ordinary storable value in monitored collections.
    """

    _instance: "Nil | None" = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "nil"

    def __bool__(self) -> bool:
        return False

    def __hash__(self) -> int:
        # Stable across interpreters (the default id() hash is not):
        # ``nil`` appears inside Const/Atom/β-schema hashes, and spawned
        # workers re-import a fresh singleton at a new address.
        return 0x6E696C  # "nil"

    def __reduce__(self):
        return (Nil, ())


NIL = Nil()

ObjectId = Hashable
"""Identity of a shared object; the runtime uses ``(kind, serial)`` pairs."""


@dataclass(frozen=True)
class Action:
    """A method invocation ``obj.method(args)/returns`` on a shared object.

    ``args`` and ``returns`` are tuples so that actions are hashable and can
    key dictionaries in the analyses.  Most library methods return a single
    value; a method returning nothing uses an empty ``returns`` tuple.
    """

    obj: ObjectId
    method: str
    args: Tuple[Any, ...] = ()
    returns: Tuple[Any, ...] = ()

    @property
    def values(self) -> Tuple[Any, ...]:
        """``w1..wn = ~u~v``: arguments followed by returns (Section 6.2)."""
        return self.args + self.returns

    def __str__(self) -> str:
        args = ", ".join(repr(a) for a in self.args)
        rets = ", ".join(repr(r) for r in self.returns)
        return f"{self.obj}.{self.method}({args})/{rets or '()'}"


class EventKind(enum.Enum):
    """Discriminates trace events (rows of Table 1 plus baseline events).

    ``BEGIN``/``COMMIT`` delimit transactions (atomic blocks) for the
    atomicity analysis of :mod:`repro.atomicity`; they carry no payload,
    do not synchronize, and are ignored by the race detectors.
    """

    ACTION = "action"
    FORK = "fork"
    JOIN = "join"
    ACQUIRE = "acq"
    RELEASE = "rel"
    READ = "read"
    WRITE = "write"
    BEGIN = "begin"
    COMMIT = "commit"

    def is_sync(self) -> bool:
        return self in (EventKind.FORK, EventKind.JOIN,
                        EventKind.ACQUIRE, EventKind.RELEASE)

    def is_memory(self) -> bool:
        return self in (EventKind.READ, EventKind.WRITE)

    def is_transactional(self) -> bool:
        return self in (EventKind.BEGIN, EventKind.COMMIT)


@dataclass
class Event:
    """One trace event ``τ : label``.

    Exactly one of the payload fields is populated, depending on ``kind``:

    * ``ACTION`` — ``action`` holds the :class:`Action`.
    * ``FORK`` / ``JOIN`` — ``peer`` holds the forked/joined thread id.
    * ``ACQUIRE`` / ``RELEASE`` — ``lock`` holds the lock identity.
    * ``READ`` / ``WRITE`` — ``location`` holds the memory-location identity.

    ``index`` is the event's position in its trace (the ``≤π`` total order);
    ``clock`` is filled in by happens-before tracking once known — it is the
    ``vc(e)`` of the paper.
    """

    kind: EventKind
    tid: Tid
    action: Optional[Action] = None
    peer: Optional[Tid] = None
    lock: Optional[Hashable] = None
    location: Optional[Hashable] = None
    index: int = -1
    clock: Optional[VectorClock] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.kind is EventKind.ACTION and self.action is None:
            raise ValueError("ACTION event requires an action payload")
        if self.kind in (EventKind.FORK, EventKind.JOIN) and self.peer is None:
            raise ValueError(f"{self.kind.value} event requires a peer thread")
        if self.kind in (EventKind.ACQUIRE, EventKind.RELEASE) and self.lock is None:
            raise ValueError(f"{self.kind.value} event requires a lock")
        if self.kind.is_memory() and self.location is None:
            raise ValueError(f"{self.kind.value} event requires a location")

    def label(self) -> str:
        """Human-readable ``τ : a`` form used in reports."""
        if self.kind is EventKind.ACTION:
            return f"{self.tid}: {self.action}"
        if self.kind in (EventKind.FORK, EventKind.JOIN):
            return f"{self.tid}: {self.kind.value}({self.peer})"
        if self.kind.is_memory():
            return f"{self.tid}: {self.kind.value}({self.location})"
        if self.kind.is_transactional():
            return f"{self.tid}: {self.kind.value}"
        return f"{self.tid}: {self.kind.value}({self.lock})"

    def __str__(self) -> str:
        return self.label()


# -- constructors ------------------------------------------------------------
#
# The runtime builds events constantly; these helpers keep call sites terse
# and make the payload-field discipline impossible to get wrong.

def action_event(tid: Tid, action: Action) -> Event:
    """``τ : o.m(~x)/~y`` — a method-invocation event."""
    return Event(EventKind.ACTION, tid, action=action)


def fork_event(tid: Tid, child: Tid) -> Event:
    """``τ : fork(u)`` — thread ``tid`` creates thread ``child``."""
    return Event(EventKind.FORK, tid, peer=child)


def join_event(tid: Tid, child: Tid) -> Event:
    """``τ : join(u)`` — thread ``tid`` awaits termination of ``child``."""
    return Event(EventKind.JOIN, tid, peer=child)


def acquire_event(tid: Tid, lock: Hashable) -> Event:
    """``τ : acq(l)``."""
    return Event(EventKind.ACQUIRE, tid, lock=lock)


def release_event(tid: Tid, lock: Hashable) -> Event:
    """``τ : rel(l)``."""
    return Event(EventKind.RELEASE, tid, lock=lock)


def begin_event(tid: Tid) -> Event:
    """``τ : begin`` — the thread enters an intended-atomic block."""
    return Event(EventKind.BEGIN, tid)


def commit_event(tid: Tid) -> Event:
    """``τ : commit`` — the thread leaves its intended-atomic block."""
    return Event(EventKind.COMMIT, tid)


def read_event(tid: Tid, location: Hashable) -> Event:
    """Low-level memory read (consumed only by read/write baselines)."""
    return Event(EventKind.READ, tid, location=location)


def write_event(tid: Tid, location: Hashable) -> Event:
    """Low-level memory write (consumed only by read/write baselines)."""
    return Event(EventKind.WRITE, tid, location=location)


# -- compact wire format ------------------------------------------------------
#
# The sharded offline analyzer (:mod:`repro.core.parallel`) ships stamped
# action events to worker processes.  Pickling whole Event objects works but
# drags along payload fields that are None for actions; these helpers
# flatten a stamped action to a plain tuple (the object id is factored out
# at the per-object group level, so it is not repeated per event).  The
# clock rides along as the immutable VectorClock itself: sharing is safe,
# it already pickles compactly via ``__reduce__``, and the in-process
# (inline) shard path then needs no reconstruction at all.

def pack_stamped_action(event: Event, index: int,
                        clock: VectorClock) -> Tuple[Any, ...]:
    """Flatten a stamped ACTION event to a compact picklable tuple."""
    act = event.action
    return (index, event.tid, act.method, act.args, act.returns, clock)


def unpack_stamped_action(obj: ObjectId, packed: Tuple[Any, ...]) -> Event:
    """Rebuild the Event (with its ``vc(e)``) from :func:`pack_stamped_action`."""
    index, tid, method, args, returns, clock = packed
    event = Event(EventKind.ACTION, tid,
                  action=Action(obj, method, args, returns))
    event.index = index
    event.clock = clock
    return event


# -- fixed-width shared-memory records ----------------------------------------
#
# The shm execution backend (:mod:`repro.core.shmem`) ships the same stamped
# actions through ``multiprocessing.shared_memory`` ring buffers instead of
# pickled tuples.  Each ring slot is one 40-byte record; variable-length
# payloads (interned value bytes, inflated clock bases, spilled argument-id
# lists) live in a byte side-region consumed strictly in record order, so no
# offsets ever cross the ring — only lengths.
#
# Record layout (little-endian)::
#
#     B  kind       REC_* discriminator
#     B  counts     ACTION: nargs<<4 | nreturns (0 with FLAG_WIDE)
#     H  flags      FLAG_* bits
#     I  tid        interned thread-id value id (ACTION/BASE)
#     Q  index      trace index of the event (ACTION)
#     Q  stamp      the thread's own clock component (ACTION)
#     I  method     interned method-name value id (ACTION)
#     I  v0         first inline value id / intern id / object position
#     I  v1         second inline value id
#     I  side       length of this record's side-region payload in bytes
#
# Clocks exploit the copy-on-write stamping invariant (PR 4): within a
# synchronization window a thread's clock is one immutable *base* mapping
# plus the thread's own advanced component.  A BASE record ships the base
# once per (thread, window); every ACTION then carries only the 8-byte
# ``stamp`` delta — O(1) per event where pickling ships the O(threads)
# mapping every time.

RECORD_STRUCT = struct.Struct("<BBHIQQIIII")
RECORD_SIZE = RECORD_STRUCT.size
assert RECORD_SIZE == 40

REC_ACTION = 1   #: one stamped action (delta-encoded clock)
REC_INTERN = 2   #: defines value id v0 := decode_value(side)
REC_OBJECT = 3   #: switch replay to the shard's object at position v0
REC_BASE = 4     #: (re)define thread tid's clock base from side bytes
REC_END = 5      #: end of this shard's stream

FLAG_SPILL = 1   #: ACTION has > 2 value ids; all of them live in the side
FLAG_WIDE = 2    #: ACTION arity exceeds a nibble; side starts with <HH counts

_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def encode_value(value: Any) -> bytes:
    """Encode one trace value (tid, method, argument or return) to bytes.

    Tag-discriminated and *exact*: a value decodes to the same type and
    value it was encoded from (``True`` never comes back as ``1``, ``nil``
    never as ``None``), because race reports render values with ``repr``
    and the shm backend is held to byte-identical reports.  Anything
    outside the common scalar/tuple vocabulary falls back to pickle.
    """
    if value is None:
        return b"N"
    cls = value.__class__
    if cls is bool:
        return b"T" if value else b"F"
    if cls is int:
        if _I64_MIN <= value <= _I64_MAX:
            return b"i" + _I64.pack(value)
        return b"P" + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    if cls is str:
        return b"s" + value.encode("utf-8", "surrogatepass")
    if cls is float:
        return b"f" + _F64.pack(value)
    if cls is Nil:
        return b"n"
    if cls is bytes:
        return b"y" + value
    if cls is tuple:
        parts = [b"t", _U32.pack(len(value))]
        for item in value:
            blob = encode_value(item)
            parts.append(_U32.pack(len(blob)))
            parts.append(blob)
        return b"".join(parts)
    return b"P" + pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)


def decode_value(blob: bytes) -> Any:
    """Inverse of :func:`encode_value`."""
    tag = blob[:1]
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"i":
        return _I64.unpack_from(blob, 1)[0]
    if tag == b"s":
        return blob[1:].decode("utf-8", "surrogatepass")
    if tag == b"f":
        return _F64.unpack_from(blob, 1)[0]
    if tag == b"n":
        return NIL
    if tag == b"y":
        return blob[1:]
    if tag == b"t":
        count = _U32.unpack_from(blob, 1)[0]
        items = []
        at = 5
        for _ in range(count):
            size = _U32.unpack_from(blob, at)[0]
            at += 4
            items.append(decode_value(blob[at:at + size]))
            at += size
        return tuple(items)
    if tag == b"P":
        return pickle.loads(blob[1:])
    raise ValueError(f"unknown value tag {tag!r}")
