"""Recorded traces: capture, inspection and replay.

A :class:`Trace` is the sequence ``π`` of Section 3.1 — events in program
order, each stamped with its position (``≤π``) and, after happens-before
computation, its vector clock.  Traces are the interchange format between
the runtime (which records them), the detectors (which consume them online
or by replay) and the oracle/property tests (which enumerate event pairs).

:class:`TraceBuilder` offers a small fluent API for constructing traces by
hand — the unit tests build the paper's Fig. 3 trace this way.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from .events import (Action, Event, EventKind, ObjectId, acquire_event,
                     action_event, begin_event, commit_event, fork_event,
                     join_event, read_event, release_event, write_event)
from .hb import HappensBeforeTracker
from .vector_clock import Tid, VectorClock

__all__ = ["Trace", "TraceBuilder"]


class Trace:
    """An immutable-by-convention sequence of trace events.

    Events appended via :meth:`append` receive consecutive ``index`` values.
    :meth:`stamp` runs happens-before tracking over the whole trace, filling
    in every event's ``clock`` — after which :meth:`may_happen_in_parallel`
    and the pairwise iterators are meaningful.
    """

    def __init__(self, events: Iterable[Event] = (), root: Tid = 0):
        self.root = root
        self._events: List[Event] = []
        self._stamped = False
        for event in events:
            self.append(event)

    def append(self, event: Event) -> Event:
        event.index = len(self._events)
        self._events.append(event)
        self._stamped = False
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Tuple[Event, ...]:
        return tuple(self._events)

    # -- happens-before -------------------------------------------------------

    def stamp(self) -> "Trace":
        """(Re)compute ``vc(e)`` for every event; returns self."""
        tracker = HappensBeforeTracker(root=self.root)
        for event in self._events:
            tracker.observe(event)
        self._stamped = True
        return self

    @property
    def stamped(self) -> bool:
        return self._stamped

    def may_happen_in_parallel(self, e1: Event, e2: Event) -> bool:
        """``e1 ‖ e2`` — requires :meth:`stamp` to have run."""
        if not self._stamped:
            self.stamp()
        return e1.clock.parallel(e2.clock)

    # -- views ------------------------------------------------------------------

    def actions(self, obj: Optional[ObjectId] = None) -> List[Event]:
        """Action events, optionally restricted to one object."""
        out = []
        for event in self._events:
            if event.kind is not EventKind.ACTION:
                continue
            if obj is not None and event.action.obj != obj:
                continue
            out.append(event)
        return out

    def objects(self) -> List[ObjectId]:
        """The shared objects touched by action events, in first-touch order."""
        seen: Dict[ObjectId, None] = {}
        for event in self._events:
            if event.kind is EventKind.ACTION:
                seen.setdefault(event.action.obj, None)
        return list(seen)

    def threads(self) -> List[Tid]:
        """Thread ids appearing in the trace, in first-appearance order."""
        seen: Dict[Tid, None] = {self.root: None}
        for event in self._events:
            seen.setdefault(event.tid, None)
            if event.kind in (EventKind.FORK, EventKind.JOIN):
                seen.setdefault(event.peer, None)
        return list(seen)

    def unordered_action_pairs(
            self, obj: Optional[ObjectId] = None
    ) -> Iterator[Tuple[Event, Event]]:
        """All pairs of action events that may happen in parallel.

        Pairs are yielded with the earlier event (by trace position) first.
        This is the quadratic enumeration the oracle performs.
        """
        if not self._stamped:
            self.stamp()
        acts = self.actions(obj)
        for i, e1 in enumerate(acts):
            for e2 in acts[i + 1:]:
                if e1.clock.parallel(e2.clock):
                    yield (e1, e2)

    def replay(self, sink: Callable[[Event], object]) -> None:
        """Feed every event to ``sink`` (e.g. ``detector.process``)."""
        for event in self._events:
            sink(event)

    def __repr__(self) -> str:
        return f"Trace({len(self._events)} events, root={self.root!r})"


class TraceBuilder:
    """Fluent construction of hand-written traces.

    Example (the paper's Fig. 3)::

        trace = (TraceBuilder(root="m")
                 .fork("m", 2).fork("m", 3)
                 .action(3, Action("o", "put", ("a.com", "c1"), (NIL,)))
                 .action(2, Action("o", "put", ("a.com", "c2"), ("c1",)))
                 .join("m", 2).join("m", 3)
                 .action("m", Action("o", "size", (), (1,)))
                 .build())
    """

    def __init__(self, root: Tid = 0):
        self._trace = Trace(root=root)
        self.root = root

    def fork(self, tid: Tid, child: Tid) -> "TraceBuilder":
        self._trace.append(fork_event(tid, child))
        return self

    def join(self, tid: Tid, child: Tid) -> "TraceBuilder":
        self._trace.append(join_event(tid, child))
        return self

    def join_all(self, tid: Tid, children: Iterable[Tid]) -> "TraceBuilder":
        """The ``joinall`` of the paper's examples."""
        for child in children:
            self.join(tid, child)
        return self

    def acquire(self, tid: Tid, lock: Hashable) -> "TraceBuilder":
        self._trace.append(acquire_event(tid, lock))
        return self

    def release(self, tid: Tid, lock: Hashable) -> "TraceBuilder":
        self._trace.append(release_event(tid, lock))
        return self

    def action(self, tid: Tid, action: Action) -> "TraceBuilder":
        self._trace.append(action_event(tid, action))
        return self

    def begin(self, tid: Tid) -> "TraceBuilder":
        """Open an intended-atomic block (for the atomicity analysis)."""
        self._trace.append(begin_event(tid))
        return self

    def commit(self, tid: Tid) -> "TraceBuilder":
        """Close the thread's intended-atomic block."""
        self._trace.append(commit_event(tid))
        return self

    def invoke(self, tid: Tid, obj: ObjectId, method: str,
               *args, returns=()) -> "TraceBuilder":
        """Shorthand for :meth:`action` building the Action inline."""
        if not isinstance(returns, tuple):
            returns = (returns,)
        self._trace.append(action_event(tid, Action(obj, method, args, returns)))
        return self

    def read(self, tid: Tid, location: Hashable) -> "TraceBuilder":
        self._trace.append(read_event(tid, location))
        return self

    def write(self, tid: Tid, location: Hashable) -> "TraceBuilder":
        self._trace.append(write_event(tid, location))
        return self

    def build(self, stamp: bool = True) -> Trace:
        if stamp:
            self._trace.stamp()
        return self._trace
