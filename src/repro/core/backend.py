"""Runtime selection of the shard fan-out execution backend.

The sharded pipeline can push stamped actions to workers four ways:

``pickle``
    The original path: full payload pickled per shard into a
    ``multiprocessing.Pool``.  Always available; the fallback of last
    resort.
``shm``
    Zero-pickle: stamped actions encoded into per-shard
    ``multiprocessing.shared_memory`` record rings
    (:mod:`repro.core.shmem`); only the per-worker init payload
    (registrations, plans, knobs) is pickled, once.
``thread``
    A thread pool running the shard worker in-process.  Only a true
    parallelism win on free-threaded (PEP 703, 3.13t) interpreters;
    on a GIL build it is selected only when explicitly requested
    (useful for debugging — zero IPC of any kind).
``subinterp``
    One subinterpreter per shard via the low-level
    ``_interpreters``/``_xxsubinterpreters`` module where a *usable*
    implementation exists.  Payloads cross as pickled bytes, but
    workers escape the main interpreter's GIL on per-interpreter-GIL
    builds (3.12+).

``resolve_backend`` turns a user request (including ``auto``) into a
:class:`BackendChoice` with the selected mode and a human-readable
reason whenever the selection differs from the request — the CLI prints
it, tests assert on it, and nothing ever fails hard just because an
optional runtime feature is missing.
"""

from __future__ import annotations

import os
import pickle
import sys
import sysconfig
import tempfile
from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["BACKENDS", "BackendChoice", "resolve_backend", "shm_available",
           "free_threaded", "subinterpreters_available",
           "run_pickled_in_subinterpreter"]

BACKENDS = ("auto", "pickle", "shm", "thread", "subinterp")


@dataclass(frozen=True)
class BackendChoice:
    """What the user asked for, what they got, and why (if different)."""

    requested: str
    selected: str
    reason: Optional[str] = None

    def describe(self) -> str:
        if self.reason is None:
            return self.selected
        return f"{self.selected} ({self.reason})"


_SHM_PROBE: Optional[bool] = None
_SUBINTERP_PROBE: Optional[Tuple[bool, str]] = None


def shm_available() -> bool:
    """Can this host actually create shared-memory segments?

    Some sandboxes mount ``/dev/shm`` read-only or not at all; probing
    with a real 1-byte segment is the only reliable signal.
    """
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            from multiprocessing import shared_memory
            seg = shared_memory.SharedMemory(create=True, size=1)
            seg.close()
            seg.unlink()
            _SHM_PROBE = True
        except Exception:
            _SHM_PROBE = False
    return _SHM_PROBE


def free_threaded() -> bool:
    """True only on a free-threaded build *with the GIL actually off*."""
    gil_check = getattr(sys, "_is_gil_enabled", None)
    if gil_check is not None:
        try:
            return not gil_check()
        except Exception:
            return False
    return bool(sysconfig.get_config_var("Py_GIL_DISABLED"))


def _subinterp_module():
    try:
        import _interpreters  # 3.13+
        return _interpreters
    except ImportError:
        pass
    try:
        import _xxsubinterpreters  # 3.8–3.12 (API drifts per version)
        return _xxsubinterpreters
    except ImportError:
        return None


def _run_in_new_interpreter(code: str) -> None:
    """Create → run → destroy one subinterpreter; raise on any failure."""
    mod = _subinterp_module()
    if mod is None:
        raise RuntimeError("no subinterpreter module")
    interp = mod.create()
    try:
        runner = getattr(mod, "run_string", None) or getattr(mod, "exec", None)
        if runner is None:
            raise RuntimeError("no run entry point")
        result = runner(interp, code)
        # 3.13's _interpreters.exec returns an error snapshot instead of
        # raising; older run_string raises RunFailedError itself.
        if result is not None:
            raise RuntimeError(str(result))
    finally:
        try:
            mod.destroy(interp)
        except Exception:
            pass


def subinterpreters_available() -> Tuple[bool, str]:
    """(usable, detail) — probed by actually running code in one."""
    global _SUBINTERP_PROBE
    if _SUBINTERP_PROBE is None:
        if _subinterp_module() is None:
            _SUBINTERP_PROBE = (False, "no _interpreters module")
        else:
            try:
                _run_in_new_interpreter("x = 1 + 1")
                _SUBINTERP_PROBE = (True, "")
            except Exception as exc:
                _SUBINTERP_PROBE = (False, f"probe failed: {exc}")
    return _SUBINTERP_PROBE


def run_pickled_in_subinterpreter(payload_blob: bytes, run_code: str) -> bytes:
    """Execute ``run_code`` in a fresh subinterpreter and return its bytes.

    The payload and result cross the interpreter boundary through temp
    files — the lowest common denominator across every ``_interpreters``
    API generation (channel APIs exist but differ per version).
    ``run_code`` is formatted with ``{payload!r}``/``{result!r}`` paths
    and must pickle its result to the ``{result}`` file.
    """
    with tempfile.NamedTemporaryFile(delete=False) as fin:
        fin.write(payload_blob)
        payload_path = fin.name
    result_path = payload_path + ".out"
    code = run_code.format(payload=payload_path, result=result_path,
                           sys_path=sys.path)
    try:
        _run_in_new_interpreter(code)
        with open(result_path, "rb") as fout:
            return fout.read()
    finally:
        for path in (payload_path, result_path):
            try:
                os.unlink(path)
            except OSError:
                pass


def resolve_backend(requested: str) -> BackendChoice:
    """Map a requested backend to a usable one, never failing hard.

    Fallback chains: ``shm → pickle``, ``subinterp → shm → pickle``,
    ``auto → thread`` (free-threaded only) ``→ shm → pickle``.
    ``thread`` and ``pickle`` are always honored as requested.
    """
    if requested not in BACKENDS:
        raise ValueError(
            f"unknown backend {requested!r}; expected one of "
            f"{', '.join(BACKENDS)}")
    if requested == "pickle" or requested == "thread":
        return BackendChoice(requested, requested)
    if requested == "shm":
        if shm_available():
            return BackendChoice(requested, "shm")
        return BackendChoice(requested, "pickle",
                             "shared memory unavailable on this host")
    if requested == "subinterp":
        usable, detail = subinterpreters_available()
        if usable:
            return BackendChoice(requested, "subinterp")
        if shm_available():
            return BackendChoice(requested, "shm",
                                 f"subinterpreters unusable ({detail})")
        return BackendChoice(
            requested, "pickle",
            f"subinterpreters unusable ({detail}); shared memory "
            f"unavailable")
    # auto
    if free_threaded():
        return BackendChoice(requested, "thread",
                             "free-threaded interpreter detected")
    if shm_available():
        return BackendChoice(requested, "shm",
                             "GIL enabled; shared-memory rings selected")
    return BackendChoice(requested, "pickle",
                         "GIL enabled and shared memory unavailable")


def _reset_probe_cache() -> None:
    """Test hook: forget cached probe results."""
    global _SHM_PROBE, _SUBINTERP_PROBE
    _SHM_PROBE = None
    _SUBINTERP_PROBE = None
