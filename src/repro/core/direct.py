"""The direct, specification-level detector (the strawman of Section 5.1).

This analysis records every action occurring in the execution.  When a new
action arrives it checks, against *each* previously observed action on the
same object, whether the two may happen in parallel and fail to commute —
evaluating the logical commutativity formula ``ϕ(a, b)`` pairwise.

It is precise (same verdicts as Algorithm 1 on a representation of the same
specification) but performs ``Θ(|A|)`` commutativity checks per action,
where ``A`` is the set of actions seen so far.  It exists as the baseline
for the Fig. 4 check-count comparison and the Section 5.4 scaling series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .detector import DetectorStats
from .events import Action, Event, EventKind, ObjectId
from .hb import HappensBeforeTracker
from .races import CommutativityRace
from .vector_clock import Tid, VectorClock

__all__ = ["DirectDetector"]

Commutes = Callable[[Action, Action], bool]


class DirectDetector:
    """Pairwise specification-level commutativity race detection.

    Parameters
    ----------
    root:
        Initial thread id.
    keep_reports:
        As in :class:`~repro.core.detector.CommutativityRaceDetector`.

    Objects are registered with a ``commutes(a, b) -> bool`` predicate —
    typically :meth:`repro.logic.spec.CommutativitySpec.commutes`.
    """

    def __init__(self, root: Tid = 0, keep_reports: bool = True):
        self._hb = HappensBeforeTracker(root=root)
        self._keep_reports = keep_reports
        self._commutes: Dict[ObjectId, Commutes] = {}
        self._history: Dict[ObjectId, List[Tuple[Action, VectorClock, Tid]]] = {}
        self.races: List[CommutativityRace] = []
        self.stats = DetectorStats()

    def register_object(self, obj: ObjectId, commutes: Commutes) -> None:
        if obj in self._commutes:
            raise ValueError(f"object {obj!r} registered twice")
        self._commutes[obj] = commutes
        self._history[obj] = []

    def process(self, event: Event) -> Optional[List[CommutativityRace]]:
        clock = self._hb.observe(event)
        self.stats.events += 1
        if event.kind is not EventKind.ACTION:
            return None
        action = event.action
        commutes = self._commutes.get(action.obj)
        if commutes is None:
            return None
        self.stats.actions += 1
        self.stats.points_touched += 1

        found: List[CommutativityRace] = []
        history = self._history[action.obj]
        for prior_action, prior_clock, prior_tid in history:
            self.stats.conflict_checks += 1
            if prior_clock.leq(clock):
                continue  # ordered: no race possible
            if commutes(prior_action, action):
                continue
            race = CommutativityRace(
                obj=action.obj,
                current=action,
                current_clock=clock,
                current_tid=event.tid,
                point=action,
                prior_point=prior_action,
                prior_clock=prior_clock,
                prior=prior_action,
                prior_tid=prior_tid,
            )
            self.stats.races += 1
            found.append(race)
            if self._keep_reports:
                self.races.append(race)
        history.append((action, clock, event.tid))
        return found or None

    def run(self, events) -> List[CommutativityRace]:
        for event in events:
            self.process(event)
        return self.races
