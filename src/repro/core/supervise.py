"""Shard supervision: tracked jobs, timeouts, bounded retry, inline fallback.

The sharded pipeline's phase B used to be a bare ``pool.map``: one hung,
killed or crashing worker took the whole analysis down with it — unfit for
the long-lived production runs the paper's evaluation targets (H2 under
PolePosition, Cassandra's snitch).  :class:`ShardSupervisor` replaces it
with per-shard job tracking built around one invariant:

    **a supervised run's merged race report is byte-identical to the
    fault-free run's.**

That invariant is cheap to guarantee here because shard replay is *pure*:
each attempt builds a fresh detector from the shard's payload, so attempts
are idempotent and any successful attempt — in a pool worker or inline —
produces exactly the same triples.  Supervision therefore only decides
*where* a shard runs, never *what* it computes:

1. Every shard is submitted as an individually tracked job
   (``apply_async``) with a per-round timeout covering hung workers *and*
   workers that died mid-task (a killed pool worker is replaced by
   ``multiprocessing``, but its job's result never arrives).
2. A failed shard is retried in a fresh pool, up to
   :attr:`SupervisorConfig.max_retries` times, with exponential backoff
   between rounds.  Any round that saw a failure tears its pool down with
   ``terminate()`` so hung or zombie attempts cannot linger.
3. A shard that exhausts its retries — or fails in a way retrying cannot
   fix, like a result that does not pickle — is replayed **in-process**,
   where no pool, pipe or pickling is involved.  Graceful degradation:
   slower, never wrong.

Failures are recorded in the run's :class:`~repro.core.faults.FaultLog`
and, when observability is on, as registry counters (``shard_timeouts``,
``shard_worker_errors``, ``shard_result_errors``, ``shard_retries``,
``shard_fallbacks``, plus the ``faults_by_kind`` breakdown), so a tolerated
fault is always visible in ``--stats-json``.

Task-side pickling failures (the *payload* cannot be shipped) are the one
non-recoverable class: they are a caller input problem, so the supervisor
asks its ``diagnose`` callback to turn them into a precise
:class:`~repro.core.errors.MonitorError` naming the offending object
instead of retrying a deterministic failure.

For deterministic robustness testing, the worker can be wrapped with a
fault-injection plan (:attr:`SupervisorConfig.wrap`, or the
``REPRO_FAULT_PLAN`` environment variable consumed by
:mod:`repro.testing.faults`).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
import os
import pickle
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple)

from .faults import FaultLog

__all__ = ["DEFAULT_SHARD_TIMEOUT", "ANALYZER_POLICIES", "QuarantinePolicy",
           "SupervisorConfig", "ShardSupervisor"]


def _run_serialized(worker: Callable, index: int, blob: bytes,
                    attempt: int):
    """Pool trampoline: the payload crosses as pre-pickled bytes.

    The parent serializes each payload exactly once (and reuses the same
    bytes verbatim on every retry); this rehydrates it worker-side.  The
    pool still pickles the ``bytes`` object itself, but that is a flat
    memcpy-sized frame, not a re-walk of the payload's object graph.
    """
    return worker(index, pickle.loads(blob), attempt)

#: Valid fault policies for components that isolate analyzer exceptions:
#: ``"raise"`` propagates, ``"log"`` records and keeps going, ``"disable"``
#: records and quarantines the faulty analyzer after ``max_faults``.
ANALYZER_POLICIES = ("raise", "disable", "log")


class QuarantinePolicy:
    """Shared analyzer-fault policy: raise, log, or disable-after-N.

    Both the runtime :class:`~repro.runtime.monitor.Monitor` (many
    analyzers, one monitored process) and the detection service's tenant
    sessions (one analyzer per tenant, many tenants) need the same
    decision procedure for "the analyzer raised — now what?": propagate
    the exception (``raise``), record it and continue (``log``), or
    record it and drop the analyzer from further dispatch once it has
    faulted ``max_faults`` times (``disable``).  This class owns that
    decision plus its bookkeeping — the per-analyzer fault counts, the
    :class:`~repro.core.faults.FaultLog` records, and the obs counters —
    so the two layers cannot drift apart.

    Keys are caller-chosen hashables (the monitor keys by analyzer
    identity, the service by tenant name).  :meth:`record_failure`
    returns the verdict for this fault: ``"raise"``, ``"continue"`` or
    ``"quarantine"`` (returned exactly once, on the fault that crosses
    the threshold; later faults on a quarantined key should not occur —
    callers stop dispatching — but degrade to ``"continue"``).
    """

    def __init__(self, policy: str = "raise", max_faults: int = 5,
                 obs=None, faults: Optional[FaultLog] = None,
                 site: str = "analyzer"):
        if policy not in ANALYZER_POLICIES:
            raise ValueError(
                f"analyzer policy must be one of {ANALYZER_POLICIES}, "
                f"got {policy!r}")
        if max_faults < 1:
            raise ValueError(f"max_faults must be >= 1, got {max_faults}")
        self.policy = policy
        self.max_faults = max_faults
        self.site = site
        self.faults = faults if faults is not None else FaultLog()
        self._obs = obs if (obs is not None and obs.enabled) else None
        self._obs_faults = (self._obs.breakdown(f"{site}_faults")
                            if self._obs is not None else None)
        self._counts: Dict[Any, int] = {}
        self._quarantined: set = set()

    @property
    def isolates(self) -> bool:
        """True when exceptions should be caught rather than propagate."""
        return self.policy != "raise"

    def is_quarantined(self, key: Any) -> bool:
        return key in self._quarantined

    def fault_count(self, key: Any) -> int:
        return self._counts.get(key, 0)

    def quarantined_keys(self) -> set:
        return set(self._quarantined)

    def record_failure(self, key: Any, name: str, exc: Exception) -> str:
        """Account one analyzer exception; return the verdict.

        ``name`` is the human label used in fault records and obs
        breakdowns (the monitor passes the analyzer's class name, the
        service the tenant id).
        """
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        self.faults.record(
            site=self.site, kind="exception", attempt=count,
            detail=f"{name}: {type(exc).__name__}: {exc}")
        if self._obs_faults is not None:
            self._obs_faults[name] = self._obs_faults.get(name, 0) + 1
        if self.policy == "raise":
            return "raise"
        if self.policy == "disable" and count >= self.max_faults \
                and key not in self._quarantined:
            self._quarantined.add(key)
            self.faults.record(
                site=self.site, kind="quarantined", attempt=count,
                detail=f"{name}: dropped from dispatch after {count} faults")
            if self._obs is not None:
                self._obs.add(f"{self.site}s_quarantined")
                self._obs.count_in(f"{self.site}_quarantined", name)
            return "quarantine"
        return "continue"

#: Per-round shard deadline, in seconds.  Generous — a shard replay is
#: seconds, not minutes — because the timeout's job is to detect hung and
#: killed workers, not to police slow ones; a shard that legitimately needs
#: longer can raise it via ``SupervisorConfig`` / ``--shard-timeout``.
DEFAULT_SHARD_TIMEOUT = 120.0


@dataclass
class SupervisorConfig:
    """Supervision knobs (defaults suit offline analysis runs).

    ``shard_timeout`` is the per-round budget for a shard attempt;
    ``None`` waits forever (then a killed worker's lost job would hang the
    round, so only disable it for debugging).  ``max_retries`` bounds
    *pool* attempts beyond the first; after ``1 + max_retries`` failed
    attempts the shard is replayed inline.  Backoff before retry round
    ``n`` is ``backoff_base * backoff_factor ** n`` seconds.

    ``wrap`` (a callable ``worker -> worker``) lets the fault-injection
    harness interpose on the worker; ``sleep`` is injectable so tests can
    run backoff-free.
    """

    shard_timeout: Optional[float] = DEFAULT_SHARD_TIMEOUT
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    wrap: Optional[Callable[[Callable], Callable]] = None
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.shard_timeout is not None and self.shard_timeout <= 0:
            raise ValueError(
                f"shard_timeout must be > 0 (or None), got {self.shard_timeout}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1:
            raise ValueError(
                f"backoff must be non-negative and non-shrinking, got "
                f"base={self.backoff_base} factor={self.backoff_factor}")

    def backoff(self, round_index: int) -> float:
        """Delay before retry round ``round_index`` (0-based)."""
        return self.backoff_base * self.backoff_factor ** round_index


class ShardSupervisor:
    """Run one job per payload through a worker pool, surviving failures.

    Parameters
    ----------
    worker:
        Module-level callable ``worker(index, payload, attempt) -> result``
        (module-level so it is importable under any multiprocessing start
        method).  ``index`` and ``attempt`` are supervision bookkeeping a
        plain worker is free to ignore; the fault harness keys on them.
    processes:
        Pool size ceiling (each round's pool is sized to its pending jobs).
    mp_context:
        Optional start-method name (``"fork"``, ``"spawn"``...).
    config:
        :class:`SupervisorConfig`; defaults used when omitted.
    obs / faults:
        Optional metrics registry and fault log to record failures into
        (a fresh private :class:`FaultLog` is created when none is given).
    diagnose:
        Optional ``(index, exc) -> Optional[Exception]`` consulted on
        worker-side exceptions; returning an exception aborts the run by
        raising it (used to turn raw task pickling errors into a
        :class:`~repro.core.errors.MonitorError` naming the object).
    """

    def __init__(self, worker: Callable, processes: int,
                 mp_context: Optional[str] = None,
                 config: Optional[SupervisorConfig] = None,
                 obs=None, faults: Optional[FaultLog] = None,
                 diagnose: Optional[Callable[[int, Exception],
                                             Optional[Exception]]] = None):
        self._config = config or SupervisorConfig()
        self._processes = max(1, processes)
        self._mp_context = mp_context
        self._obs = obs if (obs is not None and obs.enabled) else None
        self._diagnose = diagnose
        self.faults = faults if faults is not None else FaultLog()
        wrap = self._config.wrap
        if wrap is None and os.environ.get("REPRO_FAULT_PLAN"):
            # Deterministic harness hook: an externally provided plan (JSON
            # in the environment) wraps the worker exactly like a test
            # passing SupervisorConfig(wrap=...) would — this is how the
            # differential suite injects faults through the real CLI.
            from ..testing.faults import FaultPlan
            wrap = FaultPlan.from_env().wrap
        self._worker = wrap(worker) if wrap is not None else worker
        self._blobs: Dict[int, bytes] = {}

    # -- the supervision loop ----------------------------------------------

    #: Obs counter bumped per failure kind (fault records carry the precise
    #: kind either way; unknown kinds from external round runners count as
    #: worker errors).
    _FAILURE_COUNTERS = {
        "timeout": "shard_timeouts",
        "result-unpicklable": "shard_result_errors",
        "task-unpicklable": "shard_result_errors",
        "worker-raised": "shard_worker_errors",
    }

    def run(self, payloads: Sequence[Any]) -> List[Any]:
        """Compute one result per payload, in payload order."""
        return self._supervise(payloads, self._pool_round)

    def run_rounds(self, payloads: Sequence[Any],
                   round_runner: Callable) -> List[Any]:
        """Supervise an externally provided round executor.

        The shared-memory / thread / subinterpreter backends bring their
        own transport but want this class's retry, backoff, fault
        accounting and inline-fallback semantics.  ``round_runner`` is
        called as ``round_runner(payloads, jobs, results)`` with ``jobs``
        a list of ``(index, attempt)`` pairs; it must fill ``results``
        for the jobs it completed and return a list of
        ``(index, attempt, kind, detail, retryable)`` failures.  The
        inline fallback still runs ``self._worker`` directly.
        """
        return self._supervise(payloads, round_runner)

    def _supervise(self, payloads: Sequence[Any],
                   round_runner: Callable) -> List[Any]:
        results: Dict[int, Any] = {}
        pending: List[Tuple[int, int]] = [(i, 0) for i in range(len(payloads))]
        degraded: List[Tuple[int, int]] = []
        round_index = 0
        while pending:
            failures = round_runner(payloads, pending, results)
            pending = []
            for index, attempt, kind, detail, retryable in failures:
                self._record(kind, shard=index, attempt=attempt, detail=detail)
                self._count(self._FAILURE_COUNTERS.get(
                    kind, "shard_worker_errors"))
                done = attempt + 1
                if not retryable or done > self._config.max_retries:
                    degraded.append((index, done))
                else:
                    self._count("shard_retries")
                    pending.append((index, done))
            if pending:
                self._config.sleep(self._config.backoff(round_index))
            round_index += 1
        for index, attempt in sorted(degraded):
            # In-process replay: same payload, same pure computation, no
            # pool/pipe/pickle in the way — the merged report stays
            # byte-identical to the fault-free run's.
            self._record("fallback", shard=index, attempt=attempt,
                         detail="shard replayed in-process after "
                                "supervision gave up on the pool")
            self._count("shard_fallbacks")
            results[index] = self._worker(index, payloads[index], attempt)
        return [results[index] for index in range(len(payloads))]

    @property
    def worker(self) -> Callable:
        """The (possibly fault-wrapped) worker callable."""
        return self._worker

    def payload_blob(self, index: int, payload: Any) -> bytes:
        """Serialize ``payload`` once; retries reuse the identical bytes."""
        blob = self._blobs.get(index)
        if blob is not None:
            self._count("shard_payload_reuse")
            return blob
        start = time.perf_counter_ns()
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        if self._obs is not None:
            self._obs.add("ipc_bytes_pickled", len(blob))
            self._obs.timer("ipc_serialize").record(
                time.perf_counter_ns() - start)
        self._blobs[index] = blob
        return blob

    def _pool_round(self, payloads: Sequence[Any],
                    jobs: List[Tuple[int, int]],
                    results: Dict[int, Any]
                    ) -> List[Tuple[int, int, str, str, bool]]:
        """One pool generation; returns the round's failures.

        Any failure dirties the round and the whole pool is ``terminate``d
        (a timed-out job may be a hung worker still squatting on a CPU);
        a clean round closes and joins normally.  ``KeyboardInterrupt`` —
        or any other escaping exception — also terminates the pool before
        propagating, so an interrupted analysis leaves no orphan workers.
        """
        config = self._config
        ctx = (multiprocessing.get_context(self._mp_context)
               if self._mp_context else multiprocessing.get_context())
        failures: List[Tuple[int, int, str, str, bool]] = []
        handles: List[Tuple[int, int, Any]] = []
        submittable: List[Tuple[int, int, bytes]] = []
        for index, attempt in jobs:
            try:
                blob = self.payload_blob(index, payloads[index])
            except Exception as exc:
                # The payload itself will not pickle — deterministic, so
                # never retried: diagnose (usually a precise MonitorError
                # naming the object) or degrade straight to inline.
                diagnosed = (self._diagnose(index, exc)
                             if self._diagnose is not None else None)
                if diagnosed is not None:
                    raise diagnosed from exc
                failures.append((index, attempt, "task-unpicklable",
                                 f"{type(exc).__name__}: {exc}", False))
                continue
            submittable.append((index, attempt, blob))
        if not submittable:
            return failures
        pool = ctx.Pool(processes=min(self._processes, len(submittable)))
        dirty = False
        try:
            handles = [
                (index, attempt,
                 pool.apply_async(_run_serialized,
                                  (self._worker, index, blob, attempt)))
                for index, attempt, blob in submittable]
            deadline = (time.monotonic() + config.shard_timeout
                        if config.shard_timeout is not None else None)
            for index, attempt, handle in handles:
                try:
                    results[index] = self._await(handle, deadline)
                except multiprocessing.TimeoutError:
                    dirty = True
                    failures.append((
                        index, attempt, "timeout",
                        f"no result within {config.shard_timeout:g}s "
                        f"(hung or killed worker)", True))
                except multiprocessing.pool.MaybeEncodingError as exc:
                    # The worker finished but its *result* would not pickle.
                    # Retrying in a pool reproduces the failure; the inline
                    # fallback needs no pickling, so degrade immediately.
                    dirty = True
                    failures.append((index, attempt, "result-unpicklable",
                                     str(exc), False))
                except Exception as exc:
                    dirty = True
                    diagnosed = (self._diagnose(index, exc)
                                 if self._diagnose is not None else None)
                    if diagnosed is not None:
                        raise diagnosed from exc
                    failures.append((index, attempt, "worker-raised",
                                     f"{type(exc).__name__}: {exc}", True))
        except BaseException:
            pool.terminate()
            pool.join()
            raise
        if dirty:
            pool.terminate()
        else:
            pool.close()
        pool.join()
        return failures

    @staticmethod
    def _await(handle, deadline: Optional[float]):
        """Wait for one job (separated out so tests can interpose)."""
        if deadline is None:
            return handle.get()
        return handle.get(max(0.0, deadline - time.monotonic()))

    # -- accounting --------------------------------------------------------

    def _record(self, kind: str, shard: int, attempt: int,
                detail: str = "") -> None:
        self.faults.record(site="shard", kind=kind, detail=detail,
                           shard=shard, attempt=attempt)
        if self._obs is not None:
            self._obs.add("shard_faults")
            self._obs.count_in("faults_by_kind", f"shard/{kind}")

    def _count(self, name: str) -> None:
        if self._obs is not None:
            self._obs.add(name)
