"""Trace serialization: JSON-lines persistence for recorded executions.

Traces are this library's interchange format (record once, replay through
any analyzer), so being able to park them on disk matters: long benchmark
runs can be analyzed offline, failing interleavings can be attached to bug
reports, and regression suites can replay frozen traces.

Format: one JSON object per line.  The first line is a header
(``{"repro-trace": 1, "root": ...}``); each following line is one event::

    {"kind": "action", "tid": 1, "obj": "o", "method": "put",
     "args": ["a.com", "c1"], "returns": [{"$nil": true}]}

Values are restricted to JSON scalars, lists/tuples and two sentinels:
``{"$nil": true}`` encodes the paper's ``NIL`` and ``{"$tuple": [...]}``
preserves tuple-ness (actions' argument containers are always tuples; this
sentinel covers tuples *nested inside* argument values).  Unsupported
values fail loudly — silent lossy encoding would corrupt replay verdicts.
"""

from __future__ import annotations

import json
import time as _time
from typing import Any, IO, Iterable, Iterator, List, Optional, Union

from .errors import FrameTooLargeError, ReproError
from .events import (NIL, Action, Event, EventKind, acquire_event,
                     action_event, begin_event, commit_event, fork_event,
                     join_event, read_event, release_event, write_event)
from .trace import Trace

__all__ = ["dump_trace", "dumps_trace", "load_trace", "loads_trace",
           "MAX_RECORD_BYTES", "TailReader", "follow_trace"]

_FORMAT_KEY = "repro-trace"
_FORMAT_VERSION = 1

#: Default single-record size cap for incremental readers.  Far above any
#: legitimate event line (events are a handful of scalars), far below a
#: footprint that could hurt the process — a frame past this cap is a
#: corrupt or adversarial stream, not a slow writer.
MAX_RECORD_BYTES = 1 << 20


class _TraceFormatError(ReproError):
    pass


def _encode_value(value: Any) -> Any:
    if value is NIL:
        return {"$nil": True}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(item) for item in value]}
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise _TraceFormatError(
        f"cannot serialize value {value!r} of type {type(value).__name__}; "
        f"traces may only carry JSON scalars, tuples/lists and NIL")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get("$nil") is True:
            return NIL
        if "$tuple" in value:
            return tuple(_decode_value(item) for item in value["$tuple"])
        raise _TraceFormatError(f"unknown value sentinel {value!r}")
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def _encode_event(event: Event) -> dict:
    record: dict = {"kind": event.kind.value,
                    "tid": _encode_value(event.tid)}
    if event.kind is EventKind.ACTION:
        action = event.action
        record["obj"] = _encode_value(action.obj)
        record["method"] = action.method
        record["args"] = [_encode_value(v) for v in action.args]
        record["returns"] = [_encode_value(v) for v in action.returns]
    elif event.kind in (EventKind.FORK, EventKind.JOIN):
        record["peer"] = _encode_value(event.peer)
    elif event.kind in (EventKind.ACQUIRE, EventKind.RELEASE):
        record["lock"] = _encode_value(event.lock)
    elif event.kind.is_memory():
        record["location"] = _encode_value(event.location)
    return record


def _decode_event(record: dict) -> Event:
    try:
        kind = EventKind(record["kind"])
    except (KeyError, ValueError) as exc:
        raise _TraceFormatError(f"bad event record {record!r}") from exc
    tid = _decode_value(record["tid"])
    if kind is EventKind.ACTION:
        action = Action(
            obj=_decode_value(record["obj"]),
            method=record["method"],
            args=tuple(_decode_value(v) for v in record["args"]),
            returns=tuple(_decode_value(v) for v in record["returns"]))
        return action_event(tid, action)
    if kind is EventKind.FORK:
        return fork_event(tid, _decode_value(record["peer"]))
    if kind is EventKind.JOIN:
        return join_event(tid, _decode_value(record["peer"]))
    if kind is EventKind.ACQUIRE:
        return acquire_event(tid, _decode_value(record["lock"]))
    if kind is EventKind.RELEASE:
        return release_event(tid, _decode_value(record["lock"]))
    if kind is EventKind.READ:
        return read_event(tid, _decode_value(record["location"]))
    if kind is EventKind.WRITE:
        return write_event(tid, _decode_value(record["location"]))
    if kind is EventKind.BEGIN:
        return begin_event(tid)
    return commit_event(tid)


def dump_trace(trace: Trace, stream: IO[str]) -> None:
    """Write a trace to a text stream as JSON lines."""
    header = {_FORMAT_KEY: _FORMAT_VERSION,
              "root": _encode_value(trace.root),
              "events": len(trace)}
    stream.write(json.dumps(header) + "\n")
    for event in trace:
        stream.write(json.dumps(_encode_event(event)) + "\n")


def dumps_trace(trace: Trace) -> str:
    """The trace as a JSONL string."""
    import io
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(stream: IO[str], stamp: bool = True) -> Trace:
    """Read a trace written by :func:`dump_trace`; stamps by default."""
    lines = iter(stream)
    try:
        header = json.loads(next(lines))
    except StopIteration:
        raise _TraceFormatError("empty trace stream") from None
    if header.get(_FORMAT_KEY) != _FORMAT_VERSION:
        raise _TraceFormatError(
            f"not a repro trace (or unsupported version): header {header!r}")
    trace = Trace(root=_decode_value(header["root"]))
    for line in lines:
        line = line.strip()
        if not line:
            continue
        trace.append(_decode_event(json.loads(line)))
    declared = header.get("events")
    if declared is not None and declared != len(trace):
        raise _TraceFormatError(
            f"truncated trace: header declares {declared} events, "
            f"found {len(trace)}")
    if stamp:
        trace.stamp()
    return trace


def loads_trace(text: str, stamp: bool = True) -> Trace:
    """Parse a trace from a JSONL string."""
    import io
    return load_trace(io.StringIO(text), stamp=stamp)


# -- incremental reading (streaming analysis) --------------------------------


class TailReader:
    """Incremental JSONL trace reader that tolerates a partial tail.

    :func:`load_trace` treats a trace whose event count falls short of the
    header's declaration as fatally truncated — correct for batch analysis
    of a finished file, wrong for a trace *still being written*: the
    stream analyzer must distinguish "corrupt" from "not yet flushed".
    This reader makes that distinction mechanical.  It reads the file in
    chunks, decodes every newline-terminated record, and stops at the
    first incomplete one, remembering its byte offset; the next
    :meth:`poll` (or a fresh reader built with ``resume_offset``) retries
    from there, so a writer killed mid-record leaves the reader parked at
    the last complete event instead of wedged or crashed.  A *complete*
    line that fails to decode is real corruption and still raises.

    Typical loop::

        reader = TailReader(path)
        while not reader.done:
            for event in reader.poll():
                analyzer.process(event)
            time.sleep(poll_interval)   # or give up after an idle budget

    ``done`` turns true once the header's declared event count has been
    read; headerless writers never report done and the caller decides
    when to stop (idle timeout).

    One pathology is *not* retried: a record larger than
    ``max_record_bytes`` (complete or still growing) raises
    :class:`~repro.core.errors.FrameTooLargeError` and bumps the
    ``stream_frame_errors`` obs counter.  Without the cap a corrupt
    length-runaway line would park the reader at a poisoned resume
    offset forever — every poll re-reading a "partial" record that can
    never complete.
    """

    def __init__(self, path: str, resume_offset: Optional[int] = None,
                 root: Any = None, declared_events: Optional[int] = None,
                 events_read: int = 0, chunk_size: int = 1 << 16,
                 max_record_bytes: int = MAX_RECORD_BYTES, obs=None):
        if max_record_bytes < 1:
            raise ValueError(
                f"max_record_bytes must be >= 1, got {max_record_bytes}")
        self._path = path
        self._chunk_size = chunk_size
        self._max_record = max_record_bytes
        self._obs = obs if (obs is not None and obs.enabled) else None
        #: True when the last poll ended on a partially written record.
        self.truncated = False
        if resume_offset is None:
            self.offset = 0
            self.root: Any = None
            self.declared_events: Optional[int] = None
            self.events_read = 0
            self._header_done = False
        else:
            # Resuming a previous reader's position: the header was
            # already consumed, so the caller supplies its fields —
            # including how many events the prefix held, so ``done``
            # still means "declared count reached".
            self.offset = resume_offset
            self.root = root
            self.declared_events = declared_events
            self.events_read = events_read
            self._header_done = True

    @classmethod
    def from_status(cls, path: str, status, **kwargs) -> "TailReader":
        """Resume from a :class:`~repro.core.stream.FollowStatus`.

        A reader resumed from a bare byte offset has no header fields:
        with ``declared_events`` unknown, ``done`` can never turn true
        and every resumed follow runs to its idle timeout even when the
        writer finished cleanly.  The follow status carries the full
        resume metadata — offset, root, declared count, events already
        read — so this constructor is the one that preserves completion
        detection across a killed-writer resume.
        """
        if status.resume_offset == 0:
            # The previous follow never got past the header: nothing was
            # consumed, so resume as a fresh reader (a resume_offset of 0
            # with ``_header_done`` set would skip header parsing).
            return cls(path, **kwargs)
        return cls(path, resume_offset=status.resume_offset,
                   root=status.root,
                   declared_events=status.declared_events,
                   events_read=status.events_read, **kwargs)

    @property
    def header_ready(self) -> bool:
        """True once the header line has been read and validated."""
        return self._header_done

    @property
    def done(self) -> bool:
        """All declared events read (never true for headerless counts)."""
        return (self.declared_events is not None
                and self.events_read >= self.declared_events)

    def poll(self) -> List[Event]:
        """Decode every complete record appended since the last poll.

        Returns the (possibly empty) list of new events.  Leaves
        ``offset`` at the first byte of the first incomplete record —
        the resume position — and sets ``truncated`` accordingly.
        """
        try:
            handle = open(self._path, "rb")
        except FileNotFoundError:
            return []
        with handle:
            handle.seek(self.offset)
            chunks = []
            while True:
                chunk = handle.read(self._chunk_size)
                if not chunk:
                    break
                chunks.append(chunk)
        buffer = b"".join(chunks)
        events: List[Event] = []
        start = 0
        while True:
            newline = buffer.find(b"\n", start)
            if newline < 0:
                break
            line = buffer[start:newline]
            if len(line) > self._max_record:
                self._frame_error(len(line))
            consumed = newline + 1 - start
            start = newline + 1
            self.offset += consumed
            text = line.strip()
            if not text:
                continue
            record = json.loads(text.decode("utf-8"))
            if not self._header_done:
                self._read_header(record)
                continue
            events.append(_decode_event(record))
            self.events_read += 1
        remainder = len(buffer) - start
        if remainder > self._max_record:
            # The unterminated tail can only grow; parking at this resume
            # offset would retry a record that will never fit the cap.
            self._frame_error(remainder)
        self.truncated = start < len(buffer)
        return events

    def _frame_error(self, size: int) -> None:
        if self._obs is not None:
            self._obs.add("stream_frame_errors")
        raise FrameTooLargeError(
            f"trace record at byte offset {self.offset} of {self._path} "
            f"spans {size} bytes (cap {self._max_record}); refusing to "
            f"park at a poisoned resume offset")

    def _read_header(self, record: dict) -> None:
        if record.get(_FORMAT_KEY) != _FORMAT_VERSION:
            raise _TraceFormatError(
                f"not a repro trace (or unsupported version): "
                f"header {record!r}")
        self.root = _decode_value(record["root"])
        self.declared_events = record.get("events")
        self._header_done = True


def follow_trace(path: str, poll_interval: float = 0.05,
                 idle_timeout: Optional[float] = 10.0,
                 reader: Optional[TailReader] = None) -> Iterator[Event]:
    """Yield a growing trace's events as they land on disk.

    Polls ``path`` every ``poll_interval`` seconds through a
    :class:`TailReader` and yields each complete event once.  Returns
    when the header's declared event count has been read, or — so a
    killed writer cannot wedge the consumer — after ``idle_timeout``
    seconds without a single new complete record (``None`` waits
    forever).  Pass an existing ``reader`` to resume; inspect it after
    the generator ends to tell completion (``reader.done``) from an
    abandoned partial trace (``reader.truncated`` / ``reader.offset``).
    """
    if reader is None:
        reader = TailReader(path)
    idle = 0.0
    while True:
        events = reader.poll()
        for event in events:
            yield event
        if reader.done:
            return
        if events:
            idle = 0.0
        elif idle_timeout is not None:
            idle += poll_interval
            if idle >= idle_timeout:
                return
        _time.sleep(poll_interval)
