"""Trace serialization: JSON-lines persistence for recorded executions.

Traces are this library's interchange format (record once, replay through
any analyzer), so being able to park them on disk matters: long benchmark
runs can be analyzed offline, failing interleavings can be attached to bug
reports, and regression suites can replay frozen traces.

Format: one JSON object per line.  The first line is a header
(``{"repro-trace": 1, "root": ...}``); each following line is one event::

    {"kind": "action", "tid": 1, "obj": "o", "method": "put",
     "args": ["a.com", "c1"], "returns": [{"$nil": true}]}

Values are restricted to JSON scalars, lists/tuples and two sentinels:
``{"$nil": true}`` encodes the paper's ``NIL`` and ``{"$tuple": [...]}``
preserves tuple-ness (actions' argument containers are always tuples; this
sentinel covers tuples *nested inside* argument values).  Unsupported
values fail loudly — silent lossy encoding would corrupt replay verdicts.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable, List, Union

from .errors import ReproError
from .events import (NIL, Action, Event, EventKind, acquire_event,
                     action_event, begin_event, commit_event, fork_event,
                     join_event, read_event, release_event, write_event)
from .trace import Trace

__all__ = ["dump_trace", "dumps_trace", "load_trace", "loads_trace"]

_FORMAT_KEY = "repro-trace"
_FORMAT_VERSION = 1


class _TraceFormatError(ReproError):
    pass


def _encode_value(value: Any) -> Any:
    if value is NIL:
        return {"$nil": True}
    if isinstance(value, tuple):
        return {"$tuple": [_encode_value(item) for item in value]}
    if isinstance(value, list):
        return [_encode_value(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise _TraceFormatError(
        f"cannot serialize value {value!r} of type {type(value).__name__}; "
        f"traces may only carry JSON scalars, tuples/lists and NIL")


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if value.get("$nil") is True:
            return NIL
        if "$tuple" in value:
            return tuple(_decode_value(item) for item in value["$tuple"])
        raise _TraceFormatError(f"unknown value sentinel {value!r}")
    if isinstance(value, list):
        return [_decode_value(item) for item in value]
    return value


def _encode_event(event: Event) -> dict:
    record: dict = {"kind": event.kind.value,
                    "tid": _encode_value(event.tid)}
    if event.kind is EventKind.ACTION:
        action = event.action
        record["obj"] = _encode_value(action.obj)
        record["method"] = action.method
        record["args"] = [_encode_value(v) for v in action.args]
        record["returns"] = [_encode_value(v) for v in action.returns]
    elif event.kind in (EventKind.FORK, EventKind.JOIN):
        record["peer"] = _encode_value(event.peer)
    elif event.kind in (EventKind.ACQUIRE, EventKind.RELEASE):
        record["lock"] = _encode_value(event.lock)
    elif event.kind.is_memory():
        record["location"] = _encode_value(event.location)
    return record


def _decode_event(record: dict) -> Event:
    try:
        kind = EventKind(record["kind"])
    except (KeyError, ValueError) as exc:
        raise _TraceFormatError(f"bad event record {record!r}") from exc
    tid = _decode_value(record["tid"])
    if kind is EventKind.ACTION:
        action = Action(
            obj=_decode_value(record["obj"]),
            method=record["method"],
            args=tuple(_decode_value(v) for v in record["args"]),
            returns=tuple(_decode_value(v) for v in record["returns"]))
        return action_event(tid, action)
    if kind is EventKind.FORK:
        return fork_event(tid, _decode_value(record["peer"]))
    if kind is EventKind.JOIN:
        return join_event(tid, _decode_value(record["peer"]))
    if kind is EventKind.ACQUIRE:
        return acquire_event(tid, _decode_value(record["lock"]))
    if kind is EventKind.RELEASE:
        return release_event(tid, _decode_value(record["lock"]))
    if kind is EventKind.READ:
        return read_event(tid, _decode_value(record["location"]))
    if kind is EventKind.WRITE:
        return write_event(tid, _decode_value(record["location"]))
    if kind is EventKind.BEGIN:
        return begin_event(tid)
    return commit_event(tid)


def dump_trace(trace: Trace, stream: IO[str]) -> None:
    """Write a trace to a text stream as JSON lines."""
    header = {_FORMAT_KEY: _FORMAT_VERSION,
              "root": _encode_value(trace.root),
              "events": len(trace)}
    stream.write(json.dumps(header) + "\n")
    for event in trace:
        stream.write(json.dumps(_encode_event(event)) + "\n")


def dumps_trace(trace: Trace) -> str:
    """The trace as a JSONL string."""
    import io
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def load_trace(stream: IO[str], stamp: bool = True) -> Trace:
    """Read a trace written by :func:`dump_trace`; stamps by default."""
    lines = iter(stream)
    try:
        header = json.loads(next(lines))
    except StopIteration:
        raise _TraceFormatError("empty trace stream") from None
    if header.get(_FORMAT_KEY) != _FORMAT_VERSION:
        raise _TraceFormatError(
            f"not a repro trace (or unsupported version): header {header!r}")
    trace = Trace(root=_decode_value(header["root"]))
    for line in lines:
        line = line.strip()
        if not line:
            continue
        trace.append(_decode_event(json.loads(line)))
    declared = header.get("events")
    if declared is not None and declared != len(trace):
        raise _TraceFormatError(
            f"truncated trace: header declares {declared} events, "
            f"found {len(trace)}")
    if stamp:
        trace.stamp()
    return trace


def loads_trace(text: str, stamp: bool = True) -> Trace:
    """Parse a trace from a JSONL string."""
    import io
    return load_trace(io.StringIO(text), stamp=stamp)
