"""Exception hierarchy shared across the library.

Every error raised by :mod:`repro` derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish specification problems from runtime misuse.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SpecificationError",
    "FragmentError",
    "ParseError",
    "TranslationError",
    "MonitorError",
    "SchedulerError",
    "CheckpointError",
    "FrameTooLargeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ReproError):
    """A commutativity specification is malformed or inconsistent.

    Examples: a formula references a variable that is not an argument or
    return value of either method, a method pair is specified twice with
    different formulas, or a self-pair formula is not symmetric.
    """


class FragmentError(SpecificationError):
    """A formula falls outside the logical fragment required by an operation.

    Raised, for instance, when the ECL-to-access-point translator is handed
    a formula with an atomic predicate mixing variables from both actions
    (which is exactly what ECL's ``LB`` component forbids).
    """


class ParseError(SpecificationError):
    """The textual form of a commutativity formula could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position} in {text!r})"
        super().__init__(message)


class TranslationError(SpecificationError):
    """The ECL-to-access-point translation failed.

    This signals a bug or an unsupported construct rather than a user error;
    well-formed ECL formulas always translate (Theorem 6.5).
    """


class MonitorError(ReproError):
    """The dynamic-analysis runtime was used incorrectly.

    Examples: emitting events for an unregistered thread, joining a thread
    that was never forked, or releasing a lock that is not held.
    """


class SchedulerError(ReproError):
    """The cooperative scheduler detected an impossible state.

    Examples: deadlock (no runnable task while unfinished tasks remain) or a
    task yielding after it already completed.
    """


class FrameTooLargeError(ReproError):
    """A streamed trace record exceeds the configured size cap.

    Raised by :class:`~repro.core.serialize.TailReader` (and the detection
    service's ingest readers) when a single JSONL record — complete or
    still unterminated — grows past ``max_record_bytes``.  Distinct from a
    partial tail: a partial record within the cap means "not yet flushed"
    and the reader parks at a resume offset, while a record that can never
    fit is poison — without this error the reader would retry the same
    offset forever.
    """


class CheckpointError(ReproError):
    """A phase-A checkpoint could not be used.

    Examples: the file is truncated or fails its digest, it was written by
    an unsupported format version, or it belongs to a different trace or
    object registration than the resuming run's.  The resuming pipeline
    treats this as a recoverable fault — it logs the rejection and restamps
    from the beginning — so the error only escapes to callers that load
    checkpoints directly via :func:`repro.core.checkpoint.load_checkpoint`.
    """
