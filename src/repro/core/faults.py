"""Fault accounting: what went wrong, where, and what absorbed it.

The fault-tolerance layer (shard supervision in :mod:`repro.core.supervise`,
checkpoint recovery in :mod:`repro.core.checkpoint`, analyzer isolation in
:mod:`repro.runtime.monitor`) promises that tolerated failures never change
a verdict — but a tolerated failure silently swallowed is a debugging trap
and an operational blind spot.  Every recovery action therefore leaves a
:class:`FaultRecord` in a :class:`FaultLog`:

* the **supervisor** records each shard timeout, worker crash, worker
  exception and result-encoding failure, plus every inline fallback;
* the **checkpoint loader** records rejected checkpoints (truncated,
  corrupt, or from a different trace) before degrading to a full restamp;
* the **monitor** records each isolated analyzer exception and each
  quarantine decision.

The log is bounded: per-(site, kind) counts stay exact forever, but only
the first ``capacity`` records keep their details (a monitored run with a
crash-on-every-event analyzer under the ``log`` policy would otherwise
accumulate one record per trace event).  :meth:`FaultLog.snapshot` renders
the log for the ``--stats-json`` report, which is how injected faults are
asserted visible by the differential fault suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["FaultRecord", "FaultLog"]


@dataclass(frozen=True)
class FaultRecord:
    """One tolerated (or at least observed) failure.

    ``site`` names the component that saw it (``shard``, ``checkpoint``,
    ``analyzer``); ``kind`` the failure mode within that site (``timeout``,
    ``worker-raised``, ``fallback``, ``rejected``, ``exception``,
    ``quarantined``...).  ``shard`` and ``attempt`` are populated where
    they make sense (supervision and analyzer fault counting).
    """

    site: str
    kind: str
    detail: str = ""
    shard: Optional[int] = None
    attempt: Optional[int] = None

    def __str__(self) -> str:
        where = f" shard={self.shard}" if self.shard is not None else ""
        nth = f" attempt={self.attempt}" if self.attempt is not None else ""
        tail = f": {self.detail}" if self.detail else ""
        return f"[{self.site}/{self.kind}]{where}{nth}{tail}"


class FaultLog:
    """A bounded, countable record of tolerated failures.

    ``len(log)`` counts every fault ever recorded; :meth:`records` returns
    the retained detail records (the first ``capacity`` of them — the
    earliest faults are the interesting ones, later repetitions add
    volume, not information).  Per-(site, kind) counts in :meth:`by_kind`
    stay exact even past the capacity.
    """

    def __init__(self, capacity: int = 1000):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._records: List[FaultRecord] = []
        self._counts: Dict[Tuple[str, str], int] = {}
        self.dropped = 0

    def record(self, site: str, kind: str, detail: str = "",
               shard: Optional[int] = None,
               attempt: Optional[int] = None) -> FaultRecord:
        """Log one fault; returns the (possibly not retained) record."""
        fault = FaultRecord(site=site, kind=kind, detail=detail,
                            shard=shard, attempt=attempt)
        key = (site, kind)
        self._counts[key] = self._counts.get(key, 0) + 1
        if len(self._records) < self.capacity:
            self._records.append(fault)
        else:
            self.dropped += 1
        return fault

    def records(self) -> Tuple[FaultRecord, ...]:
        """The retained detail records, in recording order."""
        return tuple(self._records)

    def __iter__(self) -> Iterator[FaultRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __bool__(self) -> bool:
        return bool(self._counts)

    def count(self, site: Optional[str] = None,
              kind: Optional[str] = None) -> int:
        """Exact fault count, optionally filtered by site and/or kind."""
        return sum(value for (s, k), value in self._counts.items()
                   if (site is None or s == site)
                   and (kind is None or k == kind))

    def by_kind(self) -> Dict[str, int]:
        """Exact ``"site/kind" -> count`` summary, key-sorted."""
        return {f"{site}/{kind}": count
                for (site, kind), count in sorted(self._counts.items())}

    def clear(self) -> None:
        self._records.clear()
        self._counts.clear()
        self.dropped = 0

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able view for the ``--stats-json`` report."""
        records = []
        for fault in self._records:
            entry: Dict[str, Any] = {"site": fault.site, "kind": fault.kind}
            if fault.shard is not None:
                entry["shard"] = fault.shard
            if fault.attempt is not None:
                entry["attempt"] = fault.attempt
            if fault.detail:
                entry["detail"] = fault.detail
            records.append(entry)
        return {"counts": self.by_kind(), "records": records,
                "dropped": self.dropped}

    def __repr__(self) -> str:
        return (f"FaultLog({len(self)} faults, "
                f"{len(self._records)} retained)")
