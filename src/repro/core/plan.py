"""Compiled per-object check plans — the detector's ENUMERATE fast path.

Algorithm 1's per-action work against a :class:`~repro.core.access_points.
SchemaRepresentation` repeatedly asks the representation questions whose
answers never change after registration: which schemas carry values, which
schemas conflict with which (and in what enumeration order), and what ηo
is.  The generic path answers them through ``points_of`` (re-validating
every ``(schema, value)`` pair per action) and the ``conflicting_candidates``
generator (re-instantiating ``Co(pt)`` per probe).

A :class:`CheckPlan` is those answers flattened at ``register_object`` time
into one plain dict of plain tuples::

    table[schema] = (carries_value, (peer_schema, ...))

so the compiled loop (:func:`_process_compiled`) runs with no
representation dispatch, no ``Strategy`` branch and no per-action
validation — ηo output validation moves to the intern-table miss path,
which fires once per distinct ``(schema, value)`` pair instead of once per
action.  The peer tuples preserve the conflict *declaration* order, which
is exactly the order ``conflicting_candidates`` yields; race-report
identity across processes depends on it.

Plans are picklable (a callable plus a dict of tuples), so the sharded
analyzer compiles once in the facade and ships the plan to every worker
instead of recompiling per shard.  Under the shared-memory backend
(:mod:`repro.core.shmem`) the plan travels exactly once per worker, in
the pickled *init blob* that configures the shard process; the per-action
stream that follows it through the ring is plan-free fixed-width records.

Epoch-adaptive point clocks
---------------------------

This module also owns the detector's adaptive point-clock representation.
A :class:`_PointEpoch` pairs the point's full accumulated vector clock
``V`` with a ``(tid, stamp)`` *certificate* guaranteeing that for every
event clock ``C`` arriving after the epoch was stored::

    V ⊑ C   ⟺   stamp ≤ C[tid]

so both the phase-1 ordering test and the phase-2 join collapse to one
integer compare — FastTrack's O(1) epoch trick, but carrying the exact
clock (shared, never copied) instead of forgetting it, which keeps race
reports byte-identical to the plain full-vector-clock detector.  A point
only *inflates* to a bare vector clock on genuine contention (a
concurrent cross-thread touch, where no single-component certificate
exists), and deflates back to an epoch the moment an ordered touch —
or a maintenance window, see
:meth:`~repro.core.detector.CommutativityRaceDetector.
deflate_point_clocks` — re-establishes one.

Columnar batch checking
-----------------------

:class:`_BatchBuffer` accumulates a window of stamped actions in
struct-of-arrays form (parallel arrays of tids, clocks, object states and
a flat interned-point array with per-event offsets) and runs Algorithm 1
over the whole window in one flat loop with every hot name bound to a
local.  Within the window events are still applied strictly in trace
order — phase 2 of event *i* precedes phase 1 of event *i+1* — so race
verdicts, report order and ``repro.obs`` attribution are byte-identical
to per-event processing; the batch only amortizes the per-event dispatch
(attribute walks, method calls, counter bumps) across the window.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import (Any, Callable, Dict, Iterable, List, NamedTuple,
                    Optional, Tuple, Union)

from .access_points import (AccessPoint, AccessPointRepresentation, SchemaId,
                            SchemaRepresentation)
from .errors import SpecificationError
from .events import Action
from .vector_clock import Tid, VectorClock

__all__ = ["CheckPlan", "compile_check_plan"]

#: ``schema -> (carries_value, declaration-ordered conflicting schemas)``
PlanTable = Dict[SchemaId, Tuple[bool, Tuple[SchemaId, ...]]]


class CheckPlan:
    """A bounded representation compiled to flat lookup tables.

    ``touches`` is the representation's schema-level ηo (shared, not
    copied — it is the one genuinely dynamic ingredient); ``table`` maps
    every known schema to its value-carrying flag and its conflict peers
    in declaration order; ``kind`` tags diagnostics.
    """

    __slots__ = ("touches", "table", "kind")

    def __init__(self,
                 touches: Callable[[Action], Iterable[Tuple[SchemaId, Any]]],
                 table: PlanTable,
                 kind: str):
        self.touches = touches
        self.table = table
        self.kind = kind

    def max_conflict_degree(self) -> int:
        """The Theorem 6.6 bound, as baked into the plan."""
        if not self.table:
            return 0
        return max(len(peers) for _, peers in self.table.values())

    def __reduce__(self):
        return (CheckPlan, (self.touches, self.table, self.kind))

    def __repr__(self) -> str:
        return (f"CheckPlan({self.kind!r}, {len(self.table)} schemas, "
                f"max degree {self.max_conflict_degree()})")


def compile_check_plan(
        representation: AccessPointRepresentation) -> Optional[CheckPlan]:
    """Compile ``representation`` for the ENUMERATE fast path, if possible.

    Returns ``None`` when the representation is not a bounded
    :class:`SchemaRepresentation` — custom ``AccessPointRepresentation``
    subclasses and unbounded (SCAN-only) representations keep the generic
    interpreted path, whose semantics the compiled loop must match
    verdict-for-verdict anyway.
    """
    if not isinstance(representation, SchemaRepresentation):
        return None
    if not representation.bounded:
        return None
    table: PlanTable = {}
    for schema in representation.schemas:
        table[schema] = (representation.carries_value(schema),
                        representation.conflict_peers(schema))
    return CheckPlan(representation.touches, table, representation.kind)


# -- epoch-adaptive point clocks ----------------------------------------------


class _PointEpoch(NamedTuple):
    """``c@t`` plus the exact clock it certifies — the adaptive point state.

    ``clock`` is the point's full accumulated vector clock ``V`` (shared
    with whatever phase 2 just stored or joined, never copied) and
    ``(tid, stamp)`` is a dominance certificate: for any event clock ``C``
    stamped after this epoch was stored, ``V ⊑ C ⟺ stamp ≤ C[tid]``.

    Two certificate sources exist.  *Event-clock epochs* (phase 2): ``V``
    is itself an event clock of thread ``tid`` with ``stamp = V[tid]`` —
    a thread's component advances only on its own events, so dominance at
    ``tid`` pulls the whole event into ``C``'s causal past.  *Coverage
    epochs* (maintenance deflation): every live thread's clock already
    covers ``V`` on all components except possibly ``tid``, and every
    future event clock dominates some live thread's clock, so only the
    ``tid`` component can still decide the comparison.

    Because ``as_clock()`` returns the exact ``V``, race reports are
    byte-identical to the plain detector's — unlike FastTrack's
    write-epoch, which forgets history and only guarantees the same
    *first* race per variable.
    """

    tid: Tid
    stamp: int
    clock: VectorClock

    def as_clock(self) -> VectorClock:
        return self.clock


_PointClock = Union[_PointEpoch, VectorClock]


def _point_ordered(prior: _PointClock, clock: VectorClock) -> bool:
    """``prior ⊑ vc(e)`` for either point-clock representation."""
    if type(prior) is _PointEpoch:
        return prior.stamp <= clock[prior.tid]
    return prior.leq(clock)


def _as_clock(prior: _PointClock) -> VectorClock:
    return prior.clock if type(prior) is _PointEpoch else prior


# -- the compiled per-event loop ----------------------------------------------


def _intern_point(state, action: Action,
                  schema: SchemaId, value: Any) -> AccessPoint:
    """Intern-miss path: validate the ηo output pair and canonicalize.

    Raises the same :class:`SpecificationError`s ``points_of`` would —
    invalid pairs never enter the table, so they take this path (and
    fail) on every action, matching the generic behavior.
    """
    entry = state.plan.table.get(schema)
    if entry is None:
        raise SpecificationError(
            f"ηo touched unknown schema {schema!r} for {action}")
    if entry[0]:
        if value is None:
            raise SpecificationError(
                f"schema {schema!r} carries a value but ηo supplied "
                f"none for {action}")
    elif value is not None:
        raise SpecificationError(
            f"plain schema {schema!r} was given value {value!r} "
            f"for {action}")
    pt = AccessPoint(action.obj, schema, value)
    state.interned[(schema, value)] = pt
    return pt


def _intern_candidates(state, pt: AccessPoint) -> Tuple[AccessPoint, ...]:
    """Build and cache ``Co(pt)`` as a tuple of canonical points.

    Candidates are interned too, so a probe and a later real touch of
    the same (schema, value) pair share one instance — dict hits then
    ride the identity fast path with a cached hash.  Candidate pairs
    are valid by construction: peers of a value schema carry the same
    value, peers of a plain schema carry None (bounded representations
    never declare mixed conflicts), so the intern table stays
    validation-clean.
    """
    interned = state.interned
    # pt.value is None exactly for plain schemas, so it doubles as the
    # candidate value in both cases (same as conflicting_candidates).
    value = pt.value
    cands = []
    for peer in state.plan.table[pt.schema][1]:
        candidate = interned.get((peer, value))
        if candidate is None:
            candidate = AccessPoint(pt.obj, peer, value)
            interned[(peer, value)] = candidate
        cands.append(candidate)
    tup = tuple(cands)
    state.candidates[pt] = tup
    return tup


def _process_compiled(det, state, action: Action, tid: Tid,
                      clock: VectorClock):
    """Algorithm 1 over a compiled :class:`CheckPlan`.

    Semantically identical to the detector's generic ENUMERATE path —
    same verdicts in the same order, same counters, same sampled
    attribution — but runs a closed loop over interned points and
    cached candidate tuples: no ``points_of`` validation (moved to the
    intern miss), no representation dispatch, no candidate generator.
    """
    interned = state.interned
    stats = det.stats
    # ηo: resolve each (schema, value) pair to its canonical point.
    # The full list is built before phase 1 so an invalid pair raises
    # before any state changes, exactly like points_of would.
    touched: List[AccessPoint] = []
    append = touched.append
    for schema, value in state.plan.touches(action):
        pt = interned.get((schema, value))
        if pt is None:
            pt = _intern_point(state, action, schema, value)
        append(pt)
    stats.points_touched += len(touched)
    if det._predict_log is not None:
        # Predict mode: stash the resolved tuple so the predictive refeed
        # reuses it instead of re-evaluating ηo (process() files it under
        # the event's log position).
        det._predict_last = tuple(touched)

    sampled = det._obs is not None and det._obs_sampled
    if sampled:
        start = perf_counter_ns()

    # Phase 1: check for commutativity races.
    found = []
    checks = 0
    point_clock = state.point_clock
    candidate_map = state.candidates
    for pt in touched:
        cands = candidate_map.get(pt)
        if cands is None:
            cands = _intern_candidates(state, pt)
        checks += len(cands)
        for candidate in cands:
            prior_clock = point_clock.get(candidate)
            if prior_clock is None:
                continue  # candidate not active
            if type(prior_clock) is _PointEpoch:
                if prior_clock.stamp <= clock[prior_clock.tid]:
                    continue
                prior = prior_clock.clock
            elif prior_clock.leq(clock):
                continue
            else:
                prior = prior_clock
            det._report(state, pt, candidate, prior, action, tid, clock,
                        found)
    stats.conflict_checks += checks

    if sampled:
        delta = checks * det._obs_interval
        table = det._obs_checks_by_object
        table[action.obj] = table.get(action.obj, 0) + delta
        for pt in touched:
            det._attribute_checks(state, pt, action.method)

    # Phase 2: update auxiliary state.
    adaptive = det._adaptive
    methods = state.point_method if sampled else None
    active = state.active
    for pt in touched:
        if methods is not None:
            methods[pt] = action.method
        prior_clock = point_clock.get(pt)
        if prior_clock is None:
            if adaptive:
                point_clock[pt] = _PointEpoch(tid, clock[tid], clock)
            else:
                point_clock[pt] = clock
            active[pt] = None
        elif type(prior_clock) is _PointEpoch:
            if (prior_clock.tid == tid
                    or prior_clock.stamp <= clock[prior_clock.tid]):
                # Ordered before this event (same thread, or the epoch
                # certificate holds): the join *is* this event's clock,
                # and the event clock is its own O(1) certificate.
                point_clock[pt] = _PointEpoch(tid, clock[tid], clock)
            else:
                # Genuine contention — concurrent cross-thread touch, no
                # single-component certificate exists: inflate.
                stats.epoch_promotions += 1
                point_clock[pt] = prior_clock.clock.join(clock)
        elif adaptive and prior_clock.leq(clock):
            # The inflated clock is dominated again: this event's clock
            # subsumes it, so the point deflates right back to an epoch.
            point_clock[pt] = _PointEpoch(tid, clock[tid], clock)
        else:
            point_clock[pt] = prior_clock.join(clock)
    if sampled:
        det._obs_check_timer.record(perf_counter_ns() - start,
                                    det._obs_interval)
    return found or None


# -- columnar batch checking --------------------------------------------------


class _BatchBuffer:
    """A window of pending compiled actions in struct-of-arrays form.

    ``enqueue`` resolves ηo at arrival time (so ``SpecificationError``s
    fire on the same ``process`` call the generic path raises them on)
    and appends one entry per parallel column: tag (trace index), tid,
    event clock, object state, action, obs-sampling flag, and the
    touched interned points flattened into one array with per-event
    offsets.  ``flush`` then replays Algorithm 1 over the whole window
    in a single flat loop — events strictly in order, phase 2 of event
    *i* before phase 1 of event *i+1* — with the per-event dispatch
    cost (attribute walks, method calls, stat bumps) hoisted out.

    The detector drains the buffer before anything reads or rewrites
    point state out-of-band (pruning, clock compaction, deflation, end
    of a run), so batched runs stay byte-identical to per-event runs.

    ``tagged_races``, when set to a list, additionally receives
    ``(tag, seq, race)`` triples — the sharded pipeline's merge format —
    since the per-call return value no longer maps 1:1 to events.
    """

    __slots__ = ("det", "window", "count", "tags", "tids", "clocks",
                 "states", "actions", "sampled", "points_flat",
                 "points_off", "tagged_races")

    def __init__(self, det, window: int):
        self.det = det
        self.window = window
        self.count = 0
        self.tags: List[int] = []
        self.tids: List[Tid] = []
        self.clocks: List[VectorClock] = []
        self.states: List[Any] = []
        self.actions: List[Action] = []
        self.sampled: List[bool] = []
        self.points_flat: List[AccessPoint] = []
        self.points_off: List[int] = [0]
        #: optional sink for ``(tag, seq, race)`` triples (shard workers)
        self.tagged_races: Optional[List[Tuple[int, int, Any]]] = None

    def enqueue(self, state, action: Action, tag: int, tid: Tid,
                clock: VectorClock):
        """Buffer one stamped action; flush (and return races) when full."""
        det = self.det
        flat = self.points_flat
        touched_start = len(flat)
        interned = state.interned
        append = flat.append
        try:
            for schema, value in state.plan.touches(action):
                pt = interned.get((schema, value))
                if pt is None:
                    pt = _intern_point(state, action, schema, value)
                append(pt)
        except BaseException:
            # Keep the columns consistent: this event was never enqueued.
            del flat[touched_start:]
            raise
        det.stats.points_touched += len(flat) - touched_start
        self.tags.append(tag)
        self.tids.append(tid)
        self.clocks.append(clock)
        self.states.append(state)
        self.actions.append(action)
        self.sampled.append(det._obs is not None and det._obs_sampled)
        self.points_off.append(len(flat))
        self.count += 1
        if self.count >= self.window:
            return self.flush()
        return None

    def flush(self):
        """Run Algorithm 1 over the buffered window, in event order.

        Returns every race found in the window (or ``None``), already
        reported through the detector's normal channels (``races`` list,
        ``on_race`` callback, obs attribution) in exact trace order.
        """
        count = self.count
        if not count:
            return None
        det = self.det
        stats = det.stats
        obs = det._obs
        obs_interval = det._obs_interval
        adaptive = det._adaptive
        report = det._report
        tags = self.tags
        tids = self.tids
        clocks = self.clocks
        states = self.states
        actions = self.actions
        sampled_flags = self.sampled
        flat = self.points_flat
        offsets = self.points_off
        tagged = self.tagged_races
        epoch = _PointEpoch
        intern_candidates = _intern_candidates
        flushed: List[Any] = []
        total_checks = 0
        promotions = 0
        for i in range(count):
            state = states[i]
            action = actions[i]
            clock = clocks[i]
            tid = tids[i]
            lo = offsets[i]
            hi = offsets[i + 1]
            point_clock = state.point_clock
            candidate_map = state.candidates
            sampled = sampled_flags[i]
            if obs is not None:
                # _report consults the live sampling flag for race
                # attribution; replay the one captured at enqueue time.
                det._obs_sampled = sampled
            if sampled:
                start = perf_counter_ns()
                checks_before = total_checks

            # Phase 1.
            found = None
            for pi in range(lo, hi):
                pt = flat[pi]
                cands = candidate_map.get(pt)
                if cands is None:
                    cands = intern_candidates(state, pt)
                total_checks += len(cands)
                for candidate in cands:
                    prior_clock = point_clock.get(candidate)
                    if prior_clock is None:
                        continue  # candidate not active
                    if type(prior_clock) is epoch:
                        if prior_clock.stamp <= clock[prior_clock.tid]:
                            continue
                        prior = prior_clock.clock
                    elif prior_clock.leq(clock):
                        continue
                    else:
                        prior = prior_clock
                    if found is None:
                        found = []
                    report(state, pt, candidate, prior, action, tid, clock,
                           found)

            if sampled:
                delta = (total_checks - checks_before) * obs_interval
                table = det._obs_checks_by_object
                table[action.obj] = table.get(action.obj, 0) + delta
                for pi in range(lo, hi):
                    det._attribute_checks(state, flat[pi], action.method)
                methods = state.point_method
            else:
                methods = None

            # Phase 2.
            active = state.active
            for pi in range(lo, hi):
                pt = flat[pi]
                if methods is not None:
                    methods[pt] = action.method
                prior_clock = point_clock.get(pt)
                if prior_clock is None:
                    if adaptive:
                        point_clock[pt] = epoch(tid, clock[tid], clock)
                    else:
                        point_clock[pt] = clock
                    active[pt] = None
                elif type(prior_clock) is epoch:
                    if (prior_clock.tid == tid
                            or prior_clock.stamp <= clock[prior_clock.tid]):
                        point_clock[pt] = epoch(tid, clock[tid], clock)
                    else:
                        promotions += 1
                        point_clock[pt] = prior_clock.clock.join(clock)
                elif adaptive and prior_clock.leq(clock):
                    point_clock[pt] = epoch(tid, clock[tid], clock)
                else:
                    point_clock[pt] = prior_clock.join(clock)
            if sampled:
                det._obs_check_timer.record(perf_counter_ns() - start,
                                            obs_interval)
            if found is not None:
                if tagged is not None:
                    tag = tags[i]
                    tagged.extend((tag, seq, race)
                                  for seq, race in enumerate(found))
                flushed.extend(found)

        stats.conflict_checks += total_checks
        stats.epoch_promotions += promotions
        self.count = 0
        tags.clear()
        tids.clear()
        clocks.clear()
        states.clear()
        actions.clear()
        sampled_flags.clear()
        flat.clear()
        del offsets[1:]
        return flushed or None
