"""Compiled per-object check plans — the detector's ENUMERATE fast path.

Algorithm 1's per-action work against a :class:`~repro.core.access_points.
SchemaRepresentation` repeatedly asks the representation questions whose
answers never change after registration: which schemas carry values, which
schemas conflict with which (and in what enumeration order), and what ηo
is.  The generic path answers them through ``points_of`` (re-validating
every ``(schema, value)`` pair per action) and the ``conflicting_candidates``
generator (re-instantiating ``Co(pt)`` per probe).

A :class:`CheckPlan` is those answers flattened at ``register_object`` time
into one plain dict of plain tuples::

    table[schema] = (carries_value, (peer_schema, ...))

so the detector's compiled loop (``CommutativityRaceDetector.
_process_compiled``) runs with no representation dispatch, no ``Strategy``
branch and no per-action validation — ηo output validation moves to the
intern-table miss path, which fires once per distinct ``(schema, value)``
pair instead of once per action.  The peer tuples preserve the conflict
*declaration* order, which is exactly the order ``conflicting_candidates``
yields; race-report identity across processes depends on it.

Plans are picklable (a callable plus a dict of tuples), so the sharded
analyzer compiles once in the facade and ships the plan to every worker
instead of recompiling per shard.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from .access_points import (AccessPointRepresentation, SchemaId,
                            SchemaRepresentation)
from .events import Action

__all__ = ["CheckPlan", "compile_check_plan"]

#: ``schema -> (carries_value, declaration-ordered conflicting schemas)``
PlanTable = Dict[SchemaId, Tuple[bool, Tuple[SchemaId, ...]]]


class CheckPlan:
    """A bounded representation compiled to flat lookup tables.

    ``touches`` is the representation's schema-level ηo (shared, not
    copied — it is the one genuinely dynamic ingredient); ``table`` maps
    every known schema to its value-carrying flag and its conflict peers
    in declaration order; ``kind`` tags diagnostics.
    """

    __slots__ = ("touches", "table", "kind")

    def __init__(self,
                 touches: Callable[[Action], Iterable[Tuple[SchemaId, Any]]],
                 table: PlanTable,
                 kind: str):
        self.touches = touches
        self.table = table
        self.kind = kind

    def max_conflict_degree(self) -> int:
        """The Theorem 6.6 bound, as baked into the plan."""
        if not self.table:
            return 0
        return max(len(peers) for _, peers in self.table.values())

    def __reduce__(self):
        return (CheckPlan, (self.touches, self.table, self.kind))

    def __repr__(self) -> str:
        return (f"CheckPlan({self.kind!r}, {len(self.table)} schemas, "
                f"max degree {self.max_conflict_degree()})")


def compile_check_plan(
        representation: AccessPointRepresentation) -> Optional[CheckPlan]:
    """Compile ``representation`` for the ENUMERATE fast path, if possible.

    Returns ``None`` when the representation is not a bounded
    :class:`SchemaRepresentation` — custom ``AccessPointRepresentation``
    subclasses and unbounded (SCAN-only) representations keep the generic
    interpreted path, whose semantics the compiled loop must match
    verdict-for-verdict anyway.
    """
    if not isinstance(representation, SchemaRepresentation):
        return None
    if not representation.bounded:
        return None
    table: PlanTable = {}
    for schema in representation.schemas:
        table[schema] = (representation.carries_value(schema),
                        representation.conflict_peers(schema))
    return CheckPlan(representation.touches, table, representation.kind)
