"""Sharded offline trace analysis: the two-phase HB/check pipeline.

Algorithm 1's per-event work factors into (a) a *global* happens-before
update — Table 1 bookkeeping that inherently serializes on the thread and
lock clocks — and (b) a *per-object* race check and state update: phases 1
and 2 touch only ``active(o)`` and the point clocks of the one object the
action invokes.  Two actions on distinct objects therefore never read or
write common detector state, so once every event carries its ``vc(e)``,
the per-object work can be replayed in any interleaving — in particular,
object-by-object on separate CPUs — without changing a single verdict.

:class:`ShardedDetector` exploits that factoring for offline analysis:

Phase A (sequential)
    One pass over the trace drives :class:`~repro.core.hb.
    HappensBeforeTracker`, stamping every event with ``vc(e)`` and
    bucketing each registered object's actions (in compact wire form, see
    :func:`~repro.core.events.pack_stamped_action`).

Phase B (parallel)
    Objects are partitioned into ``workers`` shards (greedy
    longest-processing-time on action counts, deterministic), and each
    shard replays its objects' stamped actions through an ordinary
    :class:`~repro.core.detector.CommutativityRaceDetector` via
    :meth:`~repro.core.detector.CommutativityRaceDetector.process_stamped`
    in a ``multiprocessing`` pool.  Race reports come back tagged with
    their trace index and are merged in stable event-index order; shard
    stats merge via :meth:`~repro.core.detector.DetectorStats.absorb`.

The merged ``races`` list is *identical* — report for report, in the same
order — to what the sequential detector produces on the same trace, and
the merged ``stats`` agree on every per-action counter (``events`` is
taken from the phase-A pass over the whole trace).  The differential
property suite in ``tests/integration/test_sharded_differential.py``
checks exactly that across randomized multi-object traces.

Both phases are fault-tolerant.  Phase B runs under a
:class:`~repro.core.supervise.ShardSupervisor` (timeouts, bounded retry,
in-process fallback — the identity guarantee above holds even when shard
workers crash, hang, or return unpicklable results), and phase A can
periodically checkpoint its state (:mod:`repro.core.checkpoint`) so a
killed run resumes via ``resume_from`` without restamping the prefix.
Every tolerated failure lands in :attr:`ShardedDetector.faults`.
"""

from __future__ import annotations

import hashlib
import itertools
import multiprocessing
import pickle
import time
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .backend import (BackendChoice, resolve_backend,
                      run_pickled_in_subinterpreter)
from .checkpoint import (CHECKPOINT_VERSION, Checkpoint, CheckpointConfig,
                         CheckpointWriter, event_fingerprint, load_checkpoint)
from .detector import CommutativityRaceDetector, DetectorStats, Strategy
from .plan import compile_check_plan
from .errors import CheckpointError, MonitorError
from .events import (Action, Event, EventKind, ObjectId,
                     pack_stamped_action, unpack_stamped_action)
from .faults import FaultLog
from .hb import HappensBeforeTracker
from .races import CommutativityRace
from .shmem import (DEFAULT_RING_SLOTS, DEFAULT_SIDE_BYTES, RecordRing,
                    StampedDecoder, StampedEncoder, feed_shard)
from .supervise import ShardSupervisor, SupervisorConfig
from .vector_clock import Tid

__all__ = ["ShardedDetector", "partition_by_load"]


def partition_by_load(loads: Sequence[Tuple[ObjectId, int]],
                      shards: int) -> List[List[ObjectId]]:
    """Split objects into ``shards`` balanced groups, deterministically.

    Greedy longest-processing-time: objects sorted by descending load
    (ties broken by their position in ``loads``, i.e. first-touch order)
    are assigned to the currently lightest shard (ties to the lowest shard
    index).  Empty shards are dropped, so at most ``len(loads)`` groups
    come back.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    order = sorted(range(len(loads)), key=lambda i: (-loads[i][1], i))
    bins: List[List[ObjectId]] = [[] for _ in range(shards)]
    weights = [0] * shards
    for i in order:
        obj, load = loads[i]
        target = min(range(shards), key=lambda b: (weights[b], b))
        bins[target].append(obj)
        weights[target] += load
    return [group for group in bins if group]


# One shard's inputs: detector knobs plus, per object, the registration
# (representation, per-object strategy, pre-compiled check plan) and the
# object's stamped actions.  ``obs_interval`` is None when observability
# is off; otherwise the worker builds its own registry (sampling at that
# interval) and ships it back for the merge.  Plans are compiled once in
# the facade and shipped, not recompiled per shard; pickle memoization
# dedups the plan's references into the representation riding alongside.
# ``prune_snaps`` are the phase-A prune boundaries: ``(trace index of the
# triggering action, live-thread clocks at that moment)`` — what a shard
# worker needs to prune exactly where (and with exactly the clocks) the
# sequential detector's ``prune_interval`` counter would.
# ``batch_window`` turns on the worker detectors' columnar batch checking.
_ShardPayload = Tuple[bool, Strategy, bool, Optional[int], bool, int,
                      List[Tuple[int, List[Any]]],
                      List[Tuple[ObjectId, Any, Optional[Strategy], Any,
                                 List[Tuple[Any, ...]]]]]


def _analyze_shard(payload: _ShardPayload):
    """Worker: replay each object's stamped actions through Algorithm 1.

    Module-level so it is importable under any multiprocessing start
    method.  Returns ``(triples, stats, obs)`` where each triple is
    ``(event_index, seq_within_event, race)`` — actions touch exactly one
    object, so per-object replay preserves the sequential within-event
    report order, and sorting the merged triples by ``(index, seq)``
    reconstructs the sequential global order exactly.  ``obs`` is the
    shard's metric registry (None with observability off); the facade
    absorbs it next to the shard's stats, so per-object and per-method-
    pair attribution survives the fan-out.

    When the facade neither keeps reports nor has an ``on_race`` callback
    (``need_reports`` false), races are only counted: shipping tens of
    thousands of report objects back over the pipe would dominate the
    pool's cost for report-dense traces, mirroring why the sequential
    detector grew ``keep_reports=False`` for long benchmark runs.
    """
    (adaptive, strategy, need_reports, obs_interval, compiled, batch_window,
     prune_snaps, objects) = payload
    detector, obs, triples, batch = _build_shard_detector(
        adaptive, strategy, need_reports, obs_interval, compiled,
        batch_window, [entry[:4] for entry in objects])
    _replay_stamped(detector, obs, triples, batch, need_reports, prune_snaps,
                    ((obj, packed_actions)
                     for obj, _, _, _, packed_actions in objects))
    return triples, detector.stats, obs


def _build_shard_detector(adaptive, strategy, need_reports, obs_interval,
                          compiled, batch_window, registrations):
    """Construct one shard worker's detector from its registrations.

    ``registrations`` is ``(obj, representation, strategy, plan)`` tuples —
    the shard payload minus the stamped actions, which arrive either
    inside the payload (pickle backend) or through a shared-memory ring
    (shm backend).  Returns ``(detector, obs, triples, batch)``.
    """
    obs = None
    if obs_interval is not None:
        from ..obs.registry import Registry
        obs = Registry(sample_interval=obs_interval)
    detector = CommutativityRaceDetector(strategy=strategy, adaptive=adaptive,
                                         keep_reports=False, obs=obs,
                                         compiled=compiled,
                                         batch_window=batch_window)
    for obj, representation, obj_strategy, plan in registrations:
        detector.register_object(obj, representation, obj_strategy, plan=plan)
    triples: List[Tuple[int, int, CommutativityRace]] = []
    # With batching, _process_action's return value covers whole flushed
    # windows, not single events — the buffer itself records every race as
    # a (trace index, seq) triple straight into the merge format instead.
    batch = detector._batch
    if batch is not None and need_reports:
        batch.tagged_races = triples
    return detector, obs, triples, batch


def _replay_stamped(detector, obs, triples, batch, need_reports, prune_snaps,
                    streams) -> None:
    """Replay per-object stamped-action streams through Algorithm 1.

    ``streams`` yields ``(obj, iterable_of_packed_actions)`` — a list per
    object for the pickle backend, a live ring-decoder iterator for the
    shm backend; the replay is oblivious to which, so both backends run
    the *identical* code path and stay byte-identical by construction.
    """
    # One reusable Event shell per shard: the detector reads (and the race
    # reports capture) only the per-iteration action/tid/clock values, so
    # rebuilding the carrier dataclass per event is avoidable overhead.
    shell = unpack_stamped_action(None, (0, 0, "", (), (), None))
    stats = detector.stats
    snap_count = len(prune_snaps)
    replay_start = perf_counter_ns() if obs is not None else 0
    for obj, packed_actions in streams:
        # The sequential detector prunes *all* objects after the action at
        # each boundary index; this object's state at that moment is fully
        # determined by its own actions with index <= boundary, so
        # applying each snapshot between the surrounding actions replays
        # the sequential prune (and its stats) exactly.
        #
        # Only plan-backed objects go through the batch buffer (and hence
        # the tagged_races sink); a plan-less object's races keep coming
        # back inline from _process_action and must be collected here even
        # when a buffer exists for the shard's other objects.
        inline = batch is None or detector._objects[obj].plan is None
        snap_at = 0
        for packed in packed_actions:
            index, shell.tid, method, args, returns, shell.clock = packed
            while snap_at < snap_count and prune_snaps[snap_at][0] < index:
                detector.prune_object_with_clocks(
                    obj, prune_snaps[snap_at][1])
                snap_at += 1
            shell.action = Action(obj, method, args, returns)
            shell.index = index
            stats.events += 1
            if obs is not None:
                detector._obs_advance()
            found = detector._process_action(shell, shell.clock)
            if inline and found and need_reports:
                triples.extend((index, seq, race)
                               for seq, race in enumerate(found))
        while snap_at < snap_count:
            detector.prune_object_with_clocks(obj, prune_snaps[snap_at][1])
            snap_at += 1
    detector.flush_batch()
    if obs is not None:
        # One exact span per shard: merged, the "shard" timer sums replay
        # CPU time across shards (vs. the facade's "fanout" wall clock).
        obs.timer("shard").record(perf_counter_ns() - replay_start)


def _shard_job(index: int, payload: _ShardPayload, attempt: int):
    """Supervised-worker adapter: ignores the supervision bookkeeping.

    The supervisor's worker contract is ``worker(index, payload, attempt)``
    so retries are distinguishable (and so the fault harness can key on
    shard and attempt); the shard computation itself depends only on the
    payload — every attempt, pool or inline, replays identically.
    """
    return _analyze_shard(payload)


def _diagnose_unpicklable(payload: _ShardPayload,
                          exc: Exception) -> Optional[MonitorError]:
    """Explain a worker failure that is really a task-pickling failure.

    A payload that cannot be pickled never reaches the worker — the pool
    hands the serialization error back through the job's result, where it
    is indistinguishable from an exception the worker raised.  Retrying a
    deterministic serialization failure is useless, so the supervisor asks
    us first: if the payload truly does not pickle, pinpoint the object
    (and which of its parts) to blame and return a :class:`MonitorError`
    for the caller; if it pickles fine, return None — the worker genuinely
    raised ``exc`` and normal retry/fallback handling applies.
    """
    try:
        pickle.dumps(payload)
    except Exception as probe:
        objects = payload[-1]
        for obj, representation, obj_strategy, plan, packed_actions in objects:
            for part, value in (("representation", representation),
                                ("strategy override", obj_strategy),
                                ("check plan", plan),
                                ("stamped actions", packed_actions)):
                try:
                    pickle.dumps(value)
                except Exception:
                    return MonitorError(
                        f"object {obj!r}: its {part} cannot be pickled for "
                        f"shipment to worker processes "
                        f"({type(probe).__name__}: {probe}); use workers<=1 "
                        f"(inline sharding) or the sequential "
                        f"CommutativityRaceDetector")
        return MonitorError(
            f"shard payload cannot be pickled for worker processes "
            f"({type(probe).__name__}: {probe})")
    return None


# -- shared-memory / thread / subinterpreter backends -------------------------

def _shm_worker_main(ring_name: str, init_blob: bytes, conn) -> None:
    """Process target for the shm backend: decode-from-ring and replay.

    The init blob carries everything *except* the stamped actions — the
    detector knobs, prune snapshots and per-object registrations, pickled
    once per worker.  Actions stream in through the shard's record ring
    and are replayed as they arrive (pipelined with phase-A encoding).
    The result (or a classified failure) goes back over ``conn`` as
    ``("ok", result)`` / ``("error", kind, detail)``.
    """
    try:
        (adaptive, strategy, need_reports, obs_interval, compiled,
         batch_window, prune_snaps, registrations) = pickle.loads(init_blob)
        ring = RecordRing.attach(ring_name)
        try:
            detector, obs, triples, batch = _build_shard_detector(
                adaptive, strategy, need_reports, obs_interval, compiled,
                batch_window, registrations)
            objs = [entry[0] for entry in registrations]
            decoder = StampedDecoder(ring)
            _replay_stamped(
                detector, obs, triples, batch, need_reports, prune_snaps,
                ((objs[position], actions)
                 for position, actions in decoder.streams()))
            result = (triples, detector.stats, obs)
        finally:
            ring.close()
        try:
            conn.send(("ok", result))
        except Exception as exc:
            conn.send(("error", "result-unpicklable",
                       f"{type(exc).__name__}: {exc}"))
    except Exception as exc:
        try:
            conn.send(("error", "worker-raised",
                       f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


class _ShmJob:
    """Parent-side state for one in-flight shm shard."""

    __slots__ = ("index", "attempt", "ring", "conn", "proc", "encoder",
                 "feeder", "fed", "failure")

    def __init__(self, index, attempt, ring, conn, proc, encoder, feeder):
        self.index = index
        self.attempt = attempt
        self.ring = ring
        self.conn = conn
        self.proc = proc
        self.encoder = encoder
        self.feeder = feeder
        self.fed = False
        self.failure = None

    def fail(self, kind: str, detail: str, retryable: bool) -> None:
        self.failure = (self.index, self.attempt, kind, detail, retryable)


#: Subinterpreter shard script: rehydrate the payload from its temp file,
#: run the ordinary shard worker, pickle the result back out.  Formatted
#: by :func:`repro.core.backend.run_pickled_in_subinterpreter`.
_SUBINTERP_RUN = """\
import pickle, sys
for _p in {sys_path!r}:
    if _p not in sys.path:
        sys.path.append(_p)
from repro.core.parallel import _analyze_shard
with open({payload!r}, "rb") as _f:
    _payload = pickle.load(_f)
_result = _analyze_shard(_payload)
with open({result!r}, "wb") as _f:
    pickle.dump(_result, _f, protocol=pickle.HIGHEST_PROTOCOL)
"""


def _futures_round(config: SupervisorConfig, task):
    """Build a supervisor round runner over an in-process thread pool.

    Shared by the ``thread`` backend (task = the supervised worker) and
    the ``subinterp`` backend (task = run-payload-in-a-subinterpreter):
    both execute shards from threads of this process, so pool-generation
    management reduces to a ``ThreadPoolExecutor`` with the supervisor's
    per-round deadline.
    """
    from concurrent.futures import ThreadPoolExecutor
    from concurrent.futures import TimeoutError as FuturesTimeout

    def runner(payloads, jobs, results):
        failures = []
        pool = ThreadPoolExecutor(max_workers=len(jobs))
        try:
            handles = [(index, attempt,
                        pool.submit(task, index, payloads[index], attempt))
                       for index, attempt in jobs]
            deadline = (time.monotonic() + config.shard_timeout
                        if config.shard_timeout is not None else None)
            for index, attempt, handle in handles:
                try:
                    remaining = (None if deadline is None
                                 else max(0.0, deadline - time.monotonic()))
                    results[index] = handle.result(remaining)
                except FuturesTimeout:
                    failures.append((
                        index, attempt, "timeout",
                        f"no result within {config.shard_timeout:g}s",
                        True))
                except Exception as exc:
                    failures.append((index, attempt, "worker-raised",
                                     f"{type(exc).__name__}: {exc}", True))
        finally:
            # Abandon (don't join) anything still running: a hung shard
            # thread must not hang the supervisor's round loop.
            pool.shutdown(wait=False, cancel_futures=True)
        return failures

    return runner


class ShardedDetector:
    """Offline commutativity race detection, fanned out by object shard.

    Mirrors :class:`~repro.core.detector.CommutativityRaceDetector`'s
    offline API (``register_object`` / ``release_object`` / ``run`` /
    ``races`` / ``stats``) but requires the whole trace up front — there is
    no single-event ``process``, because the happens-before pass must
    complete before per-object work can be distributed.

    Parameters
    ----------
    root:
        Thread id of the initial thread.
    strategy / adaptive / keep_reports / on_race:
        As for the sequential detector; ``on_race`` fires during the merge,
        in stable event-index order.
    workers:
        Worker process count for phase B.  ``None`` uses the machine's CPU
        count; ``0`` or ``1`` runs the shard work inline (no subprocesses,
        but the same pack/replay/merge pipeline — handy for tests and for
        unpicklable custom representations).
    mp_context:
        Optional ``multiprocessing`` start-method name (``"fork"``,
        ``"spawn"``...); default lets the platform choose.
    obs:
        Optional :class:`~repro.obs.registry.Registry`.  The facade times
        the pipeline's phases exactly (``stamp`` = phase A, ``fanout`` =
        phase B wall clock, ``merge``); each worker builds a private
        registry (per-object and per-method-pair attribution plus a
        per-shard ``shard`` replay span) that is shipped back with the
        shard's stats and absorbed here, alongside the existing
        ``DetectorStats.absorb`` merge.
    supervise / supervisor:
        With ``supervise`` (the default) phase B runs under a
        :class:`~repro.core.supervise.ShardSupervisor` — per-shard
        timeout, bounded retry, in-process fallback — configured by the
        optional ``supervisor`` :class:`SupervisorConfig`.
        ``supervise=False`` restores the bare ``pool.map`` (the overhead
        gate in ``bench/parallel_scaling.py`` compares the two).
    checkpoint:
        Optional :class:`~repro.core.checkpoint.CheckpointConfig`; phase A
        then snapshots its state every ``interval`` events so a killed run
        can resume.
    resume_from:
        Optional path to a checkpoint written by a previous run over the
        same trace and registrations.  A checkpoint that fails any
        validity check is *rejected, not fatal*: the rejection is recorded
        in :attr:`faults` and the run restamps from the beginning.
    compiled:
        As for the sequential detector.  Check plans are compiled once at
        registration in this facade and shipped inside the shard payloads,
        so workers skip recompilation.
    prune_interval:
        As for the sequential detector: every N actions, reclaim active
        points (and their interned entries) that are ordered before every
        live thread.  Phase A records the live-thread clocks at each
        boundary and ships them to the shard workers, which apply them
        between the surrounding actions — verdicts, ``points_pruned`` and
        ``interned_points_evicted`` all match the sequential detector's.
        Not combinable with ``checkpoint``/``resume_from`` (the boundary
        snapshots are not checkpointed).
    batch_window:
        As for the sequential detector: when > 0, each shard worker's
        detector accumulates up to this many stamped actions in columnar
        form and checks them in one pass per window.  Races come back as
        ``(trace index, seq)``-tagged triples either way, so the merged
        output is byte-identical to ``batch_window=0``.
    backend:
        Phase-B transport: ``"pickle"`` (the default; payloads pickled
        into a process pool), ``"shm"`` (stamped actions streamed through
        per-shard ``multiprocessing.shared_memory`` record rings — only
        the per-worker registrations/knobs are pickled, once),
        ``"thread"`` (in-process thread pool; a parallelism win only on
        free-threaded interpreters), ``"subinterp"`` (one subinterpreter
        per shard where the runtime supports it), or ``"auto"``.
        Requests the runtime cannot honor fall back (shm → pickle,
        subinterp → shm → pickle) — the outcome, with its reason, is in
        :attr:`backend`, a :class:`~repro.core.backend.BackendChoice`.
        All backends produce byte-identical merged reports.
    ring_slots / ring_side_bytes:
        shm backend ring geometry (records per ring / side-region bytes);
        defaults suit typical shards.  A full ring blocks the producer
        (and interleaves other shards' feeds), never drops records.
    predict_window:
        When > 0, a predictive pass (:mod:`repro.core.predict`) runs
        after the merge: per-object candidate pairs fan out over the
        same greedy load split as phase B (thread pool — candidate
        resolution is pure Python over the shared immutable dependence
        index) and validated predictions land in :attr:`predicted`,
        sorted by original-index pair so every backend and worker count
        agrees byte for byte.  Incompatible with checkpoint/resume
        (the event log prediction needs is not part of the checkpoint
        format).
    """

    def __init__(
        self,
        root: Tid = 0,
        strategy: Strategy = Strategy.AUTO,
        on_race: Optional[Callable[[CommutativityRace], None]] = None,
        keep_reports: bool = True,
        adaptive: bool = True,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        obs=None,
        supervise: bool = True,
        supervisor: Optional[SupervisorConfig] = None,
        checkpoint: Optional[CheckpointConfig] = None,
        resume_from: Optional[str] = None,
        compiled: bool = True,
        prune_interval: int = 0,
        batch_window: int = 0,
        backend: str = "pickle",
        ring_slots: Optional[int] = None,
        ring_side_bytes: Optional[int] = None,
        predict_window: int = 0,
    ):
        if batch_window < 0:
            raise MonitorError(
                f"batch_window must be >= 0, got {batch_window}")
        if predict_window < 0:
            raise MonitorError(
                f"predict_window must be >= 0, got {predict_window}")
        if prune_interval and (checkpoint is not None
                               or resume_from is not None):
            raise MonitorError(
                "prune_interval cannot be combined with checkpointing: "
                "phase-A prune-boundary snapshots are not part of the "
                "checkpoint format, so a resumed run would prune "
                "differently than the run it resumes")
        if predict_window and (checkpoint is not None
                               or resume_from is not None):
            raise MonitorError(
                "predict_window cannot be combined with checkpointing: "
                "prediction needs the full stamped event log, which is "
                "not part of the checkpoint format")
        self._root = root
        self._prune_interval = prune_interval
        self._prune_snaps: List[Tuple[int, List[Any]]] = []
        self._strategy = strategy
        self._on_race = on_race
        self._keep_reports = keep_reports
        self._adaptive = adaptive
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.workers = multiprocessing.cpu_count() if workers is None else workers
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self._mp_context = mp_context
        self._supervise = supervise
        self._supervisor_config = supervisor
        self._checkpoint = checkpoint
        self._resume_from = resume_from
        self._compiled = compiled
        self._batch_window = batch_window
        #: Resolved execution backend for phase B (request, selection,
        #: fallback reason) — resolved eagerly so callers can log the
        #: outcome before the first run.
        self.backend: BackendChoice = resolve_backend(backend)
        self._ring_slots = ring_slots or DEFAULT_RING_SLOTS
        self._ring_side_bytes = ring_side_bytes or DEFAULT_SIDE_BYTES
        self._registrations: Dict[
            ObjectId, Tuple[Any, Optional[Strategy], Any]] = {}
        self._hb: Optional[HappensBeforeTracker] = None
        self.races: List[CommutativityRace] = []
        self.stats = DetectorStats()
        self._predict_window = predict_window
        #: Validated predictive races from the most recent :meth:`run`
        #: (``predict_window > 0``), sorted by original-index pair.
        self.predicted: List = []
        #: Tolerated failures from the most recent :meth:`run` (shard
        #: supervision and checkpoint rejection; cleared per run).
        self.faults = FaultLog()

    # -- object lifecycle ------------------------------------------------------

    def register_object(self, obj: ObjectId, representation,
                        strategy: Optional[Strategy] = None) -> None:
        """Attach an access point representation to a shared object."""
        if obj in self._registrations:
            raise MonitorError(f"object {obj!r} registered twice")
        # The thread backend never crosses a process boundary, so it is
        # exempt from the picklability requirement; every other backend
        # ships registrations to workers (shm ships them in the one-shot
        # init blob, so the probe still guards it).
        if self.workers > 1 and self.backend.selected != "thread":
            try:
                pickle.dumps(representation)
            except Exception as exc:
                raise MonitorError(
                    f"object {obj!r}: representation {representation!r} is "
                    f"not picklable, so it cannot be shipped to worker "
                    f"processes; use workers<=1 (inline sharding) or the "
                    f"sequential CommutativityRaceDetector") from exc
        # Compile the ENUMERATE fast path once, here in the facade: every
        # worker receives the finished plan in its payload instead of
        # re-deriving it per shard (per-object strategy resolution mirrors
        # CommutativityRaceDetector.register_object).
        plan = None
        if self._compiled:
            chosen = strategy or self._strategy
            if chosen is Strategy.AUTO:
                chosen = (Strategy.ENUMERATE if representation.bounded
                          else Strategy.SCAN)
            if chosen is Strategy.ENUMERATE:
                plan = compile_check_plan(representation)
        self._registrations[obj] = (representation, strategy, plan)

    def release_object(self, obj: ObjectId) -> None:
        """Drop a registration before analysis (mirrors the sequential API)."""
        self._registrations.pop(obj, None)

    def registered_objects(self):
        return self._registrations.keys()

    # -- the two-phase pipeline ------------------------------------------------

    def run(self, events) -> List[CommutativityRace]:
        """Analyze a whole trace; returns (and stores) the merged reports.

        Re-running replaces ``races`` and ``stats`` — each call analyzes
        one complete trace, like a fresh sequential detector would.
        """
        self.faults.clear()
        self.predicted = []
        if self._predict_window:
            # Phase A stamps events in place; keep the stamped list so
            # the post-merge predictive pass can replay it.
            events = list(events)
        obs = self._obs
        if obs is None:
            groups, total_events = self._stamp_and_partition(events)
            results = self._fan_out(groups)
            self._merge(results, total_events)
            if self._predict_window:
                self._run_predict(events)
            return self.races
        with obs.span("stamp"):
            groups, total_events = self._stamp_and_partition(events)
        obs.gauge("hb_threads", len(self._hb.known_threads()))
        obs.gauge("hb_locks", len(self._hb.known_locks()))
        with obs.span("fanout"):
            results = self._fan_out(groups)
        obs.gauge("shards", len(results))
        with obs.span("merge"):
            self._merge(results, total_events)
        if self._predict_window:
            with obs.span("predict"):
                self._run_predict(events)
        return self.races

    def _run_predict(self, stamped_events) -> None:
        """Post-merge predictive pass, sharded like phase B.

        The dependence index is built once, sequentially (it is cheap —
        one pass over the already-stamped events); candidate resolution
        is the expensive part (closures + witness replays), so *that*
        fans out per object over the phase-B greedy load split.  Worker
        counters come back as local dicts — the obs registry is not
        thread-safe — and merge here.
        """
        from concurrent.futures import ThreadPoolExecutor
        from .predict import Predictor
        predictor = Predictor(
            {obj: registration[0]
             for obj, registration in self._registrations.items()},
            window=self._predict_window, root=self._root, obs=self._obs)
        predictor.feed_many(stamped_events)
        loads = predictor.pending_loads()
        shard_count = min(self.workers or 1, len(loads)) or 1
        results: List = []
        if shard_count <= 1:
            outcome, counts = predictor.process_objects(
                [obj for obj, _ in loads])
            results.extend(outcome)
            predictor.absorb_counts(counts)
        else:
            shards = partition_by_load(loads, shard_count)
            with ThreadPoolExecutor(max_workers=shard_count) as pool:
                futures = [pool.submit(predictor.process_objects, shard)
                           for shard in shards if shard]
                for future in futures:
                    outcome, counts = future.result()
                    results.extend(outcome)
                    predictor.absorb_counts(counts)
        results.sort(key=lambda prediction: prediction.pair)
        self.predicted = results

    # Phase A: one sequential happens-before pass over the full trace.
    def _stamp_and_partition(self, events):
        writer = (CheckpointWriter(self._checkpoint)
                  if self._checkpoint is not None else None)
        resumed = None
        if self._resume_from is not None:
            # Resume validation reads the trace prefix and may still have
            # to restart from event zero, so it needs a re-iterable trace.
            if not isinstance(events, (list, tuple)):
                events = list(events)
            resumed = self._try_resume(events)
        if resumed is not None:
            snapshot, hasher = resumed
            self._hb = snapshot.hb
            groups = snapshot.groups
            start = snapshot.next_index
        else:
            self._hb = HappensBeforeTracker(root=self._root)
            groups = {obj: [] for obj in self._registrations}
            start = 0
            hasher = hashlib.sha256() if writer is not None else None
        total = start
        iterator = (itertools.islice(iter(events), start, None)
                    if start else iter(events))
        # Prune boundaries: the sequential detector counts *actions* (all
        # ACTION events, registered or not) and prunes after every
        # interval-th one; record that action's trace index and the live
        # clocks at that instant for the shard workers.  clock_of()
        # freezes, so the snapshots cannot be corrupted by later stamping.
        interval = self._prune_interval
        snaps: List[Tuple[int, List[Any]]] = []
        self._prune_snaps = snaps
        actions_seen = 0
        if writer is None:
            for index, event in enumerate(iterator, start):
                clock = self._hb.observe(event)
                total += 1
                if event.kind is EventKind.ACTION:
                    bucket = groups.get(event.action.obj)
                    if bucket is not None:
                        bucket.append(pack_stamped_action(event, index, clock))
                    if interval:
                        actions_seen += 1
                        if actions_seen >= interval:
                            actions_seen = 0
                            snaps.append((index, [
                                self._hb.clock_of(tid)
                                for tid in self._hb.live_threads()]))
            return groups, total
        for index, event in enumerate(iterator, start):
            clock = self._hb.observe(event)
            total += 1
            if event.kind is EventKind.ACTION:
                bucket = groups.get(event.action.obj)
                if bucket is not None:
                    bucket.append(pack_stamped_action(event, index, clock))
            hasher.update(event_fingerprint(event))
            stamped = index + 1
            if writer.maybe_write(stamped, lambda: Checkpoint(
                    version=CHECKPOINT_VERSION, root=self._root,
                    next_index=stamped, prefix_digest=hasher.hexdigest(),
                    objects=self._registration_ids(), hb=self._hb,
                    groups=groups)):
                if self._obs is not None:
                    self._obs.add("checkpoint_writes")
        return groups, total

    def _registration_ids(self) -> List[str]:
        """Canonical registered-object identity list for checkpoint guards."""
        return sorted(repr(obj) for obj in self._registrations)

    def _try_resume(self, events):
        """Load and validate ``resume_from``; ``(Checkpoint, hasher)`` or None.

        Every defect — unreadable/corrupt file, version skew, different
        root or registrations, or a trace whose stamped prefix does not
        reproduce the checkpoint's fingerprint digest — degrades to a full
        restamp, recorded as a ``checkpoint/rejected`` fault.  On success
        the returned hasher has absorbed the verified prefix, so
        checkpoint writing can continue the same running digest.
        """
        try:
            snapshot = load_checkpoint(self._resume_from)
            if snapshot.root != self._root:
                raise CheckpointError(
                    f"checkpoint was taken with root thread "
                    f"{snapshot.root!r}, this run uses {self._root!r}")
            if snapshot.objects != self._registration_ids():
                raise CheckpointError(
                    "checkpoint was taken with a different set of "
                    "registered objects")
            if snapshot.next_index > len(events):
                raise CheckpointError(
                    f"checkpoint is ahead of this trace "
                    f"({snapshot.next_index} stamped events, trace has "
                    f"{len(events)})")
            hasher = hashlib.sha256()
            for event in itertools.islice(iter(events), snapshot.next_index):
                hasher.update(event_fingerprint(event))
            if hasher.hexdigest() != snapshot.prefix_digest:
                raise CheckpointError(
                    "trace prefix does not match the checkpoint's "
                    "fingerprint digest (different or modified trace)")
        except CheckpointError as exc:
            self.faults.record(site="checkpoint", kind="rejected",
                               detail=str(exc))
            if self._obs is not None:
                self._obs.add("checkpoint_rejected")
                self._obs.count_in("faults_by_kind", "checkpoint/rejected")
            return None
        if self._obs is not None:
            self._obs.add("checkpoint_resumes")
        return snapshot, hasher

    # Phase B: shard the objects and fan the per-object replay out.
    def _fan_out(self, groups: Dict[ObjectId, List[Tuple[Any, ...]]]):
        loads = [(obj, len(bucket)) for obj, bucket in groups.items()]
        shard_count = max(1, min(self.workers, len(loads)))
        need_reports = self._keep_reports or self._on_race is not None
        obs_interval = (self._obs.sample_interval
                        if self._obs is not None else None)
        payloads = []
        for shard_objs in partition_by_load(loads, shard_count):
            objects = [(obj,) + self._registrations[obj] + (groups[obj],)
                       for obj in shard_objs]
            payloads.append((self._adaptive, self._strategy, need_reports,
                             obs_interval, self._compiled,
                             self._batch_window, self._prune_snaps, objects))
        if not payloads:
            return []
        if self.workers <= 1 or len(payloads) == 1:
            return [_analyze_shard(payload) for payload in payloads]
        selected = self.backend.selected
        if selected == "pickle" and not self._supervise:
            # Unsupervised baseline: the original bare pool.map.  Kept for
            # the supervisor-overhead benchmark gate and as an escape
            # hatch; any worker failure here takes the whole run down.
            ctx = (multiprocessing.get_context(self._mp_context)
                   if self._mp_context else multiprocessing.get_context())
            with ctx.Pool(processes=len(payloads)) as pool:
                return pool.map(_analyze_shard, payloads)
        config = self._supervisor_config or SupervisorConfig()
        supervisor = ShardSupervisor(
            _shard_job, processes=len(payloads), mp_context=self._mp_context,
            config=config, obs=self._obs, faults=self.faults,
            diagnose=lambda index, exc: _diagnose_unpicklable(
                payloads[index], exc))
        if selected == "pickle":
            return supervisor.run(payloads)
        # The alternative transports bring their own round executor but
        # keep the supervisor's retry/backoff/fault-accounting loop and
        # its inline fallback — degraded shards replay in-process with
        # identical results under every backend.
        if selected == "thread":
            runner = _futures_round(config, supervisor.worker)
        elif selected == "subinterp":
            def subinterp_task(index, payload, attempt):
                blob = supervisor.payload_blob(index, payload)
                return pickle.loads(
                    run_pickled_in_subinterpreter(blob, _SUBINTERP_RUN))
            runner = _futures_round(config, subinterp_task)
        else:
            runner = self._shm_round(config)
        return supervisor.run_rounds(payloads, runner)

    def _shm_round(self, config: SupervisorConfig):
        """Build the shm backend's supervisor round runner.

        Each job gets a private record ring and worker process; the
        parent round-robins phase-A encoding across all rings (a full
        ring yields the CPU to other shards, then to the consumer) and
        collects results over a pipe.  Init payloads — registrations and
        knobs, no actions — are pickled once per shard and reused
        verbatim on retry, mirroring the pool backend's serialize-once
        behavior.
        """
        ctx = (multiprocessing.get_context(self._mp_context)
               if self._mp_context else multiprocessing.get_context())
        obs = self._obs
        init_blobs: Dict[int, bytes] = {}
        hwm = 0

        def init_blob(index: int, payload) -> bytes:
            blob = init_blobs.get(index)
            if blob is not None:
                if obs is not None:
                    obs.add("shard_payload_reuse")
                return blob
            start = perf_counter_ns()
            blob = pickle.dumps(
                payload[:7] + ([entry[:4] for entry in payload[7]],),
                protocol=pickle.HIGHEST_PROTOCOL)
            if obs is not None:
                obs.add("ipc_bytes_pickled", len(blob))
                obs.timer("ipc_serialize").record(perf_counter_ns() - start)
            init_blobs[index] = blob
            return blob

        def runner(payloads, jobs, results):
            nonlocal hwm
            failures = []
            states: List[_ShmJob] = []
            encode_ns = 0
            try:
                for index, attempt in jobs:
                    ring = RecordRing.create(self._ring_slots,
                                             self._ring_side_bytes)
                    recv_conn, send_conn = ctx.Pipe(duplex=False)
                    proc = ctx.Process(
                        target=_shm_worker_main,
                        args=(ring.name, init_blob(index, payloads[index]),
                              send_conn),
                        daemon=True)
                    proc.start()
                    send_conn.close()
                    encoder = StampedEncoder(ring)
                    states.append(_ShmJob(
                        index, attempt, ring, recv_conn, proc, encoder,
                        feed_shard(encoder, payloads[index][7])))
                deadline = (time.monotonic() + config.shard_timeout
                            if config.shard_timeout is not None else None)
                # Feed phase: interleave all shards' encodes; a blocked
                # ring never busy-waits while another shard could progress.
                active = [job for job in states]
                while active:
                    if deadline is not None and time.monotonic() > deadline:
                        for job in active:
                            job.fail("timeout",
                                     f"ring not drained within "
                                     f"{config.shard_timeout:g}s "
                                     f"(stalled worker)", True)
                        break
                    progressed = False
                    for job in list(active):
                        start = perf_counter_ns()
                        try:
                            step = next(job.feeder)
                        except StopIteration:
                            encode_ns += perf_counter_ns() - start
                            occupancy = job.ring.occupancy_bytes()
                            if occupancy > hwm:
                                hwm = occupancy
                            job.fed = True
                            active.remove(job)
                            progressed = True
                            continue
                        encode_ns += perf_counter_ns() - start
                        occupancy = job.ring.occupancy_bytes()
                        if occupancy > hwm:
                            hwm = occupancy
                        if step:
                            progressed = True
                        elif not job.proc.is_alive():
                            # Dead consumer: stop feeding; the collect
                            # phase reads its (possibly classified) last
                            # words off the pipe.
                            active.remove(job)
                    if not progressed and active:
                        time.sleep(0.0005)
                # Collect phase.
                for job in states:
                    if job.failure is not None:
                        failures.append(job.failure)
                        continue
                    remaining = (max(0.0, deadline - time.monotonic())
                                 if deadline is not None else None)
                    msg = None
                    try:
                        if job.conn.poll(remaining):
                            msg = job.conn.recv()
                    except (EOFError, OSError):
                        msg = None
                    if msg is None:
                        if job.proc.is_alive():
                            job.fail("timeout",
                                     f"no result within "
                                     f"{config.shard_timeout:g}s "
                                     f"(hung worker)", True)
                        else:
                            job.fail("worker-raised",
                                     f"shard worker died "
                                     f"(exitcode {job.proc.exitcode})", True)
                    elif msg[0] == "ok" and job.fed:
                        results[job.index] = msg[1]
                    elif msg[0] == "ok":
                        job.fail("worker-raised",
                                 "worker returned before consuming its "
                                 "stream", True)
                    else:
                        _, kind, detail = msg
                        job.fail(kind, detail, kind != "result-unpicklable")
                    if job.failure is not None:
                        failures.append(job.failure)
            finally:
                for job in states:
                    if job.proc.is_alive():
                        job.proc.terminate()
                    job.proc.join()
                    try:
                        job.conn.close()
                    except Exception:
                        pass
                    job.ring.close()
                    job.ring.unlink()
                if obs is not None:
                    obs.add("shm_bytes_written",
                            sum(job.encoder.bytes_written for job in states))
                    obs.timer("shm_encode").record(encode_ns)
                    obs.gauge("shm_ring_hwm", hwm)
            return failures

        return runner

    # Merge: stable event-index order, summed counters.
    def _merge(self, results, total_events: int) -> None:
        self.stats = DetectorStats()
        triples: List[Tuple[int, int, CommutativityRace]] = []
        for shard_triples, shard_stats, shard_obs in results:
            triples.extend(shard_triples)
            self.stats.absorb(shard_stats)
            if shard_obs is not None and self._obs is not None:
                self._obs.absorb(shard_obs)
        # Workers count only their shard's events; the trace-wide total
        # comes from the phase-A pass (sync events included, once).
        self.stats.events = total_events
        triples.sort(key=lambda t: (t[0], t[1]))
        merged = [race for _, _, race in triples]
        self.races = merged if self._keep_reports else []
        if self._on_race is not None:
            for race in merged:
                self._on_race(race)

    # -- convenience -----------------------------------------------------------

    @property
    def happens_before(self) -> HappensBeforeTracker:
        """The phase-A happens-before state (available after :meth:`run`)."""
        if self._hb is None:
            raise MonitorError("run() has not been called yet")
        return self._hb
