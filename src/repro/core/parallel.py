"""Sharded offline trace analysis: the two-phase HB/check pipeline.

Algorithm 1's per-event work factors into (a) a *global* happens-before
update — Table 1 bookkeeping that inherently serializes on the thread and
lock clocks — and (b) a *per-object* race check and state update: phases 1
and 2 touch only ``active(o)`` and the point clocks of the one object the
action invokes.  Two actions on distinct objects therefore never read or
write common detector state, so once every event carries its ``vc(e)``,
the per-object work can be replayed in any interleaving — in particular,
object-by-object on separate CPUs — without changing a single verdict.

:class:`ShardedDetector` exploits that factoring for offline analysis:

Phase A (sequential)
    One pass over the trace drives :class:`~repro.core.hb.
    HappensBeforeTracker`, stamping every event with ``vc(e)`` and
    bucketing each registered object's actions (in compact wire form, see
    :func:`~repro.core.events.pack_stamped_action`).

Phase B (parallel)
    Objects are partitioned into ``workers`` shards (greedy
    longest-processing-time on action counts, deterministic), and each
    shard replays its objects' stamped actions through an ordinary
    :class:`~repro.core.detector.CommutativityRaceDetector` via
    :meth:`~repro.core.detector.CommutativityRaceDetector.process_stamped`
    in a ``multiprocessing`` pool.  Race reports come back tagged with
    their trace index and are merged in stable event-index order; shard
    stats merge via :meth:`~repro.core.detector.DetectorStats.absorb`.

The merged ``races`` list is *identical* — report for report, in the same
order — to what the sequential detector produces on the same trace, and
the merged ``stats`` agree on every per-action counter (``events`` is
taken from the phase-A pass over the whole trace).  The differential
property suite in ``tests/integration/test_sharded_differential.py``
checks exactly that across randomized multi-object traces.
"""

from __future__ import annotations

import multiprocessing
import pickle
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .detector import CommutativityRaceDetector, DetectorStats, Strategy
from .errors import MonitorError
from .events import (Action, Event, EventKind, ObjectId,
                     pack_stamped_action, unpack_stamped_action)
from .hb import HappensBeforeTracker
from .races import CommutativityRace
from .vector_clock import Tid

__all__ = ["ShardedDetector", "partition_by_load"]


def partition_by_load(loads: Sequence[Tuple[ObjectId, int]],
                      shards: int) -> List[List[ObjectId]]:
    """Split objects into ``shards`` balanced groups, deterministically.

    Greedy longest-processing-time: objects sorted by descending load
    (ties broken by their position in ``loads``, i.e. first-touch order)
    are assigned to the currently lightest shard (ties to the lowest shard
    index).  Empty shards are dropped, so at most ``len(loads)`` groups
    come back.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    order = sorted(range(len(loads)), key=lambda i: (-loads[i][1], i))
    bins: List[List[ObjectId]] = [[] for _ in range(shards)]
    weights = [0] * shards
    for i in order:
        obj, load = loads[i]
        target = min(range(shards), key=lambda b: (weights[b], b))
        bins[target].append(obj)
        weights[target] += load
    return [group for group in bins if group]


# One shard's inputs: detector knobs plus, per object, the registration
# (representation, per-object strategy) and the object's stamped actions.
# ``obs_interval`` is None when observability is off; otherwise the
# worker builds its own registry (sampling at that interval) and ships it
# back for the merge.
_ShardPayload = Tuple[bool, Strategy, bool, Optional[int],
                      List[Tuple[ObjectId, Any, Optional[Strategy],
                                 List[Tuple[Any, ...]]]]]


def _analyze_shard(payload: _ShardPayload):
    """Worker: replay each object's stamped actions through Algorithm 1.

    Module-level so it is importable under any multiprocessing start
    method.  Returns ``(triples, stats, obs)`` where each triple is
    ``(event_index, seq_within_event, race)`` — actions touch exactly one
    object, so per-object replay preserves the sequential within-event
    report order, and sorting the merged triples by ``(index, seq)``
    reconstructs the sequential global order exactly.  ``obs`` is the
    shard's metric registry (None with observability off); the facade
    absorbs it next to the shard's stats, so per-object and per-method-
    pair attribution survives the fan-out.

    When the facade neither keeps reports nor has an ``on_race`` callback
    (``need_reports`` false), races are only counted: shipping tens of
    thousands of report objects back over the pipe would dominate the
    pool's cost for report-dense traces, mirroring why the sequential
    detector grew ``keep_reports=False`` for long benchmark runs.
    """
    adaptive, strategy, need_reports, obs_interval, objects = payload
    obs = None
    if obs_interval is not None:
        from ..obs.registry import Registry
        obs = Registry(sample_interval=obs_interval)
    detector = CommutativityRaceDetector(strategy=strategy, adaptive=adaptive,
                                         keep_reports=False, obs=obs)
    for obj, representation, obj_strategy, _ in objects:
        detector.register_object(obj, representation, obj_strategy)
    triples: List[Tuple[int, int, CommutativityRace]] = []
    # One reusable Event shell per shard: the detector reads (and the race
    # reports capture) only the per-iteration action/tid/clock values, so
    # rebuilding the carrier dataclass per event is avoidable overhead.
    shell = unpack_stamped_action(None, (0, 0, "", (), (), None))
    stats = detector.stats
    replay_start = perf_counter_ns() if obs is not None else 0
    for obj, _, _, packed_actions in objects:
        for packed in packed_actions:
            index, shell.tid, method, args, returns, shell.clock = packed
            shell.action = Action(obj, method, args, returns)
            shell.index = index
            stats.events += 1
            if obs is not None:
                detector._obs_advance()
            found = detector._process_action(shell, shell.clock)
            if found and need_reports:
                triples.extend((index, seq, race)
                               for seq, race in enumerate(found))
    if obs is not None:
        # One exact span per shard: merged, the "shard" timer sums replay
        # CPU time across shards (vs. the facade's "fanout" wall clock).
        obs.timer("shard").record(perf_counter_ns() - replay_start)
    return triples, detector.stats, obs


class ShardedDetector:
    """Offline commutativity race detection, fanned out by object shard.

    Mirrors :class:`~repro.core.detector.CommutativityRaceDetector`'s
    offline API (``register_object`` / ``release_object`` / ``run`` /
    ``races`` / ``stats``) but requires the whole trace up front — there is
    no single-event ``process``, because the happens-before pass must
    complete before per-object work can be distributed.

    Parameters
    ----------
    root:
        Thread id of the initial thread.
    strategy / adaptive / keep_reports / on_race:
        As for the sequential detector; ``on_race`` fires during the merge,
        in stable event-index order.
    workers:
        Worker process count for phase B.  ``None`` uses the machine's CPU
        count; ``0`` or ``1`` runs the shard work inline (no subprocesses,
        but the same pack/replay/merge pipeline — handy for tests and for
        unpicklable custom representations).
    mp_context:
        Optional ``multiprocessing`` start-method name (``"fork"``,
        ``"spawn"``...); default lets the platform choose.
    obs:
        Optional :class:`~repro.obs.registry.Registry`.  The facade times
        the pipeline's phases exactly (``stamp`` = phase A, ``fanout`` =
        phase B wall clock, ``merge``); each worker builds a private
        registry (per-object and per-method-pair attribution plus a
        per-shard ``shard`` replay span) that is shipped back with the
        shard's stats and absorbed here, alongside the existing
        ``DetectorStats.absorb`` merge.
    """

    def __init__(
        self,
        root: Tid = 0,
        strategy: Strategy = Strategy.AUTO,
        on_race: Optional[Callable[[CommutativityRace], None]] = None,
        keep_reports: bool = True,
        adaptive: bool = False,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        obs=None,
    ):
        self._root = root
        self._strategy = strategy
        self._on_race = on_race
        self._keep_reports = keep_reports
        self._adaptive = adaptive
        self._obs = obs if (obs is not None and obs.enabled) else None
        self.workers = multiprocessing.cpu_count() if workers is None else workers
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        self._mp_context = mp_context
        self._registrations: Dict[ObjectId, Tuple[Any, Optional[Strategy]]] = {}
        self._hb: Optional[HappensBeforeTracker] = None
        self.races: List[CommutativityRace] = []
        self.stats = DetectorStats()

    # -- object lifecycle ------------------------------------------------------

    def register_object(self, obj: ObjectId, representation,
                        strategy: Optional[Strategy] = None) -> None:
        """Attach an access point representation to a shared object."""
        if obj in self._registrations:
            raise MonitorError(f"object {obj!r} registered twice")
        if self.workers > 1:
            try:
                pickle.dumps(representation)
            except Exception as exc:
                raise MonitorError(
                    f"object {obj!r}: representation {representation!r} is "
                    f"not picklable, so it cannot be shipped to worker "
                    f"processes; use workers<=1 (inline sharding) or the "
                    f"sequential CommutativityRaceDetector") from exc
        self._registrations[obj] = (representation, strategy)

    def release_object(self, obj: ObjectId) -> None:
        """Drop a registration before analysis (mirrors the sequential API)."""
        self._registrations.pop(obj, None)

    def registered_objects(self):
        return self._registrations.keys()

    # -- the two-phase pipeline ------------------------------------------------

    def run(self, events) -> List[CommutativityRace]:
        """Analyze a whole trace; returns (and stores) the merged reports.

        Re-running replaces ``races`` and ``stats`` — each call analyzes
        one complete trace, like a fresh sequential detector would.
        """
        obs = self._obs
        if obs is None:
            groups, total_events = self._stamp_and_partition(events)
            results = self._fan_out(groups)
            self._merge(results, total_events)
            return self.races
        with obs.span("stamp"):
            groups, total_events = self._stamp_and_partition(events)
        obs.gauge("hb_threads", len(self._hb.known_threads()))
        obs.gauge("hb_locks", len(self._hb.known_locks()))
        with obs.span("fanout"):
            results = self._fan_out(groups)
        obs.gauge("shards", len(results))
        with obs.span("merge"):
            self._merge(results, total_events)
        return self.races

    # Phase A: one sequential happens-before pass over the full trace.
    def _stamp_and_partition(self, events):
        self._hb = HappensBeforeTracker(root=self._root)
        groups: Dict[ObjectId, List[Tuple[Any, ...]]] = {
            obj: [] for obj in self._registrations}
        total = 0
        for index, event in enumerate(events):
            clock = self._hb.observe(event)
            total += 1
            if event.kind is EventKind.ACTION:
                bucket = groups.get(event.action.obj)
                if bucket is not None:
                    bucket.append(pack_stamped_action(event, index, clock))
        return groups, total

    # Phase B: shard the objects and fan the per-object replay out.
    def _fan_out(self, groups: Dict[ObjectId, List[Tuple[Any, ...]]]):
        loads = [(obj, len(bucket)) for obj, bucket in groups.items()]
        shard_count = max(1, min(self.workers, len(loads)))
        need_reports = self._keep_reports or self._on_race is not None
        obs_interval = (self._obs.sample_interval
                        if self._obs is not None else None)
        payloads = []
        for shard_objs in partition_by_load(loads, shard_count):
            objects = [(obj,) + self._registrations[obj] + (groups[obj],)
                       for obj in shard_objs]
            payloads.append((self._adaptive, self._strategy, need_reports,
                             obs_interval, objects))
        if not payloads:
            return []
        if self.workers <= 1 or len(payloads) == 1:
            return [_analyze_shard(payload) for payload in payloads]
        ctx = (multiprocessing.get_context(self._mp_context)
               if self._mp_context else multiprocessing.get_context())
        with ctx.Pool(processes=len(payloads)) as pool:
            return pool.map(_analyze_shard, payloads)

    # Merge: stable event-index order, summed counters.
    def _merge(self, results, total_events: int) -> None:
        self.stats = DetectorStats()
        triples: List[Tuple[int, int, CommutativityRace]] = []
        for shard_triples, shard_stats, shard_obs in results:
            triples.extend(shard_triples)
            self.stats.absorb(shard_stats)
            if shard_obs is not None and self._obs is not None:
                self._obs.absorb(shard_obs)
        # Workers count only their shard's events; the trace-wide total
        # comes from the phase-A pass (sync events included, once).
        self.stats.events = total_events
        triples.sort(key=lambda t: (t[0], t[1]))
        merged = [race for _, _, race in triples]
        self.races = merged if self._keep_reports else []
        if self._on_race is not None:
            for race in merged:
                self._on_race(race)

    # -- convenience -----------------------------------------------------------

    @property
    def happens_before(self) -> HappensBeforeTracker:
        """The phase-A happens-before state (available after :meth:`run`)."""
        if self._hb is None:
            raise MonitorError("run() has not been called yet")
        return self._hb
