"""Happens-before tracking via vector clocks (Table 1 of the paper).

:class:`HappensBeforeTracker` maintains the two auxiliary maps of Section 5.2:

* ``T : Tid -> VC`` — one clock per thread,
* ``L : Lock -> VC`` — one clock per lock,

and updates them at synchronization events following Table 1::

    τ : fork(u)   T(u) ← child of T(τ);  T(τ) ← inc_τ(T(τ))
    τ : join(u)   T(τ) ← T(τ) ⊔ T(u)
    τ : acq(l)    T(τ) ← T(τ) ⊔ L(l)
    τ : rel(l)    L(l) ← T(τ);  T(τ) ← inc_τ(T(τ))

Action (and read/write) events are stamped with ``vc(e) ← T(τ)``.

Stamping convention
-------------------

Table 1 stamps actions with the thread clock *as is*, which leaves two
consecutive same-thread actions with equal clocks — they would appear
mutually ordered, which is sound for race checking (``⊑`` holds both ways,
so never "parallel") but loses the strict program order.  The paper's own
Fig. 3 uses the refinement implemented here: **every stamped event first
increments its thread's component**, and fork increments the parent before
the child copies the parent's clock (the child's own component first
advances at its first event).  This assigns the figure's exact clocks
(``⟨3,0,1⟩ / ⟨2,1,0⟩ / ⟨4,1,1⟩``), gives every event a unique stamp, and
induces the same may-happen-in-parallel relation as the plain Table 1
stamps on distinct-thread events.
"""

from __future__ import annotations

from typing import Dict, Hashable, List

from .errors import MonitorError
from .events import Event, EventKind
from .vector_clock import MutableVectorClock, Tid, VectorClock

__all__ = ["HappensBeforeTracker"]


class HappensBeforeTracker:
    """Online vector-clock computation for a single trace.

    Feed events in trace order with :meth:`observe`; each event comes back
    with ``event.clock`` set to its happens-before stamp ``vc(e)``.  Two
    stamped events may happen in parallel iff their clocks are incomparable
    (``e1.clock.parallel(e2.clock)``).

    The tracker is strict about protocol misuse: joining an unknown thread or
    forking an existing one raises :class:`~repro.core.errors.MonitorError`,
    because silently fabricating a clock would corrupt every subsequent race
    verdict.
    """

    def __init__(self, root: Tid = 0):
        self._threads: Dict[Tid, MutableVectorClock] = {}
        self._locks: Dict[Hashable, MutableVectorClock] = {}
        self._joined: set = set()
        self._register_root(root)

    def _register_root(self, root: Tid) -> None:
        # The root thread starts at step 1 so that its events are never
        # stamped with ⊥ (which would be ⊑ everything and mask races with
        # pre-fork events in degenerate traces).
        clock = MutableVectorClock()
        clock.inc_in_place(root)
        self._threads[root] = clock

    # -- introspection -----------------------------------------------------

    def known_threads(self):
        """Thread ids that have been observed (root or forked)."""
        return self._threads.keys()

    def known_locks(self):
        """Lock identities that have been released at least once.

        (Acquires of never-released locks read the bottom clock and leave
        no ``L`` entry behind.)  Exposed for the observability gauges:
        the lock-clock table is the detector's other growing map, so its
        size belongs in capacity reports next to the thread count.
        """
        return self._locks.keys()

    def live_threads(self):
        """Threads that may still perform events.

        A thread that has been joined has terminated (join returns only
        after termination), so it produces no further events.  Used by the
        detector's active-point pruning.
        """
        return [tid for tid in self._threads if tid not in self._joined]

    def clock_of(self, tid: Tid) -> VectorClock:
        """Snapshot of ``T(tid)``."""
        return self._thread(tid).freeze()

    def live_clocks(self) -> List[VectorClock]:
        """Frozen ``T(τ)`` snapshots for every live thread.

        The certificates the detector's maintenance passes compare point
        clocks against: any future event's clock dominates one of these
        (fork inheritance plus per-thread monotonicity), so a point-clock
        property that holds against all of them holds against every
        future stamp.  Used by active-point pruning and epoch deflation.
        """
        return [self.clock_of(tid) for tid in self.live_threads()]

    def lock_clock(self, lock: Hashable) -> VectorClock:
        """Snapshot of ``L(lock)`` (⊥ if the lock was never released)."""
        clock = self._locks.get(lock)
        return clock.freeze() if clock is not None else VectorClock()

    def _thread(self, tid: Tid) -> MutableVectorClock:
        try:
            return self._threads[tid]
        except KeyError:
            raise MonitorError(
                f"thread {tid!r} has no clock: it was never forked nor "
                f"registered as the root thread") from None

    # -- bounded-memory maintenance (streaming mode) -----------------------

    def retire_joined_threads(self):
        """Forget the clocks of joined (terminated) threads.

        ``T(u)`` is read exactly once after ``join(u)`` — by the join
        itself — so a joined thread's entry is dead weight; dropping it
        bounds the thread table by the *live* thread count instead of the
        total ever forked.  Verdict- and stamp-preserving: no surviving
        clock is touched.  The one observable divergence is protocol
        strictness — a second ``join(u)`` or a fork reusing ``u`` raises /
        is accepted where the unretired tracker would accept / raise;
        neither occurs in well-formed traces.  Returns the retired tids.
        """
        retired = [tid for tid in self._joined if tid in self._threads]
        for tid in retired:
            del self._threads[tid]
        self._joined.difference_update(retired)
        return retired

    def compact_dead_components(self, floors=()) -> list:
        """Strip dead threads' components from every ``T``/``L`` clock.

        A component ``u`` not belonging to a live thread is *retirable*
        when every live thread clock agrees on its value ``c`` and no lock
        clock or ``floors`` clock (the caller's active point clocks)
        exceeds ``c`` at ``u``.  Then every future stamp carries exactly
        ``c`` at ``u`` (joins against locks cannot raise it, forks inherit
        it) and every comparison against a retained clock passes at ``u``,
        so dropping the entry from thread and lock clocks — and, by the
        caller, from its point clocks — preserves all verdicts while
        narrowing the clocks.  Joined-but-unretired threads are retired
        first.  Returns the list of stripped component tids.
        """
        self.retire_joined_threads()
        live = list(self._threads.values())
        if not live:
            return []
        live_tids = set(self._threads)
        candidates: dict = {}
        for clock in live:
            for tid, stamp in clock.items():
                if tid not in live_tids:
                    candidates.setdefault(tid, stamp)
        stripped = []
        for tid, agreed in candidates.items():
            if any(clock[tid] != agreed for clock in live):
                continue
            if any(lock[tid] > agreed for lock in self._locks.values()):
                continue
            if any(floor[tid] > agreed for floor in floors):
                continue
            stripped.append(tid)
        for tid in stripped:
            for clock in live:
                clock.set_component(tid, 0)
            for lock in self._locks.values():
                lock.set_component(tid, 0)
        return stripped

    # -- event processing -----------------------------------------------------

    def observe(self, event: Event) -> VectorClock:
        """Process one event; stamp and return its vector clock.

        Synchronization events update ``T``/``L`` per Table 1; every event
        is stamped (sync events with the acting thread's clock at the
        relevant instant).
        """
        if event.kind is EventKind.ACTION:
            # Inlined _on_stamp: actions are the overwhelming majority of
            # real traces and the sequential Phase A of the sharded
            # pipeline is nothing but this line repeated — skip the
            # handler-table dispatch and use the fused copy-on-write
            # inc+freeze, which is O(1) between synchronization events.
            clock = self._threads.get(event.tid)
            if clock is None:
                self._thread(event.tid)  # raises MonitorError
            stamp = clock.stamp_next(event.tid)
            event.clock = stamp
            return stamp
        handler = self._HANDLERS[event.kind]
        clock = handler(self, event)
        event.clock = clock
        return clock

    def _on_fork(self, event: Event) -> VectorClock:
        parent = self._thread(event.tid)
        child_tid = event.peer
        if child_tid in self._threads:
            raise MonitorError(f"thread {child_tid!r} forked twice")
        parent.inc_in_place(event.tid)
        self._threads[child_tid] = parent.copy()
        return parent.freeze()

    def _on_join(self, event: Event) -> VectorClock:
        waiter = self._thread(event.tid)
        target = self._threads.get(event.peer)
        if target is None:
            raise MonitorError(f"join of unknown thread {event.peer!r}")
        waiter.join_in_place(target)
        self._joined.add(event.peer)
        return waiter.freeze()

    def _on_acquire(self, event: Event) -> VectorClock:
        holder = self._thread(event.tid)
        lock_clock = self._locks.get(event.lock)
        if lock_clock is not None:
            holder.join_in_place(lock_clock)
        return holder.freeze()

    def _on_release(self, event: Event) -> VectorClock:
        holder = self._thread(event.tid)
        stamp = holder.freeze()
        self._locks[event.lock] = holder.copy()
        holder.inc_in_place(event.tid)
        return stamp

    def _on_stamp(self, event: Event) -> VectorClock:
        # Actions and memory accesses: advance the thread's own component,
        # then vc(e) ← T(τ) (the Fig. 3 stamping refinement).
        clock = self._thread(event.tid)
        clock.inc_in_place(event.tid)
        return clock.freeze()

    def _on_stamp_plain(self, event: Event) -> VectorClock:
        # Transaction boundaries: observed but not ordering and not
        # advancing the thread's component (they are not operations).
        return self._thread(event.tid).freeze()

    _HANDLERS = {
        EventKind.FORK: _on_fork,
        EventKind.JOIN: _on_join,
        EventKind.ACQUIRE: _on_acquire,
        EventKind.RELEASE: _on_release,
        EventKind.ACTION: _on_stamp,
        EventKind.READ: _on_stamp,
        EventKind.WRITE: _on_stamp,
        EventKind.BEGIN: _on_stamp_plain,
        EventKind.COMMIT: _on_stamp_plain,
    }
