"""Streaming bounded-memory analysis: follow a trace as it is written.

The batch analyzers hold the whole execution history: every active point,
every interned ``(schema, value)`` instance, every dead thread's clock.
For a finished trace that is merely wasteful; for a *never-ending* one it
is fatal.  :class:`StreamAnalyzer` runs Algorithm 1 incrementally and
keeps the detector's footprint proportional to the **concurrent**
footprint — what can still race — instead of the history:

* **Pruning + eviction** (every ``prune_interval`` actions, inside the
  detector): active points ordered before every live thread go, and so do
  their intern-table entries and candidate tuples — the Section 5.3
  "remove unnecessary active access points" bound, restored for the
  compiled hot path.
* **Thread retirement** (every ``window`` events): joined threads' clocks
  leave the happens-before tables; the thread table tracks the live set,
  not the fork total.
* **Clock compaction** (``compact_clocks=True``, opt-in): dead threads'
  components are stripped from every surviving clock where provably
  verdict-preserving.  Reported clocks narrow, so equivalence is stated
  on verdict keys, and default streaming keeps it off: with it off,
  streaming race reports are **byte-identical** to the batch detector's
  on the same trace.
* **Epoch deflation** (every ``window`` events, adaptive detectors):
  points that contention inflated to full vector clocks are re-certified
  back to O(1) epochs once the live thread clocks cover them on all but
  one component — exactly report-preserving, see
  :meth:`~repro.core.detector.CommutativityRaceDetector.
  deflate_point_clocks`.

Races are emitted incrementally (``on_race`` fires the moment phase 1
reports), and each maintenance window publishes memory gauges
(``active_points``, ``interned_points``, per-object high-water marks) and
invokes ``on_window`` — the CLI hangs its periodic ``--stats-json``
snapshots there.

:func:`follow_analyze` pairs the analyzer with
:class:`~repro.core.serialize.TailReader` to consume a trace file that is
still being written, surviving writers killed mid-record.

The daemon (``repro-serve``) wraps this analyzer per tenant; its ingest
bytes can arrive over the unix socket or, with the ``shm`` handshake key,
through a client-owned :class:`~repro.core.shmem.ByteRing` — same
newline-delimited records, same backpressure (a full ring blocks the
writer), no kernel socket copies.  See :mod:`repro.service.server`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from .detector import CommutativityRaceDetector, Strategy
from .events import Event
from .races import CommutativityRace
from .serialize import TailReader
from .vector_clock import Tid

__all__ = ["StreamAnalyzer", "FollowStatus", "follow_analyze"]


class StreamAnalyzer:
    """Incremental commutativity race detection in bounded memory.

    A thin maintenance loop around
    :class:`~repro.core.detector.CommutativityRaceDetector`: events go
    through :meth:`process` one at a time (no trace object, no length
    known up front), and every ``window`` events the analyzer retires
    dead threads, optionally compacts clocks, samples the memory gauges
    and fires ``on_window``.  Detector-level pruning/eviction rides the
    detector's own ``prune_interval`` counter, so a streaming run with
    ``prune_interval=k`` reports byte-identically to a batch detector
    constructed with the same ``prune_interval=k`` — and pruning itself
    is verdict-preserving, so also to a batch run without pruning.

    ``peak_active`` / ``peak_interned`` record the high-water marks seen
    at maintenance boundaries — the quantities the streaming memory gate
    in ``bench/parallel_scaling.py --stream`` bounds.
    """

    def __init__(
        self,
        root: Tid = 0,
        strategy: Strategy = Strategy.AUTO,
        on_race: Optional[Callable[[CommutativityRace], None]] = None,
        keep_reports: bool = True,
        prune_interval: int = 256,
        window: int = 1024,
        adaptive: bool = True,
        compact_clocks: bool = False,
        obs=None,
        compiled: bool = True,
        batch_window: int = 0,
        on_window: Optional[Callable[["StreamAnalyzer"], None]] = None,
        predict_window: int = 0,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._detector = CommutativityRaceDetector(
            root=root, strategy=strategy, on_race=on_race,
            keep_reports=keep_reports, prune_interval=prune_interval,
            adaptive=adaptive, obs=obs, compiled=compiled,
            batch_window=batch_window, predict_window=predict_window)
        self._predict = bool(predict_window)
        self._window = window
        self._compact_clocks = compact_clocks
        self._on_window = on_window
        self._obs = self._detector._obs
        self._since_maintenance = 0
        self.events_processed = 0
        self.windows_completed = 0
        self.peak_active = 0
        self.peak_interned = 0
        self.threads_retired = 0
        self.components_compacted = 0
        self.points_deflated = 0

    # -- delegation --------------------------------------------------------

    def register_object(self, obj, representation,
                        strategy: Optional[Strategy] = None) -> None:
        self._detector.register_object(obj, representation, strategy)

    def release_object(self, obj) -> None:
        self._detector.release_object(obj)

    @property
    def detector(self) -> CommutativityRaceDetector:
        return self._detector

    @property
    def races(self) -> List[CommutativityRace]:
        return self._detector.races

    @property
    def stats(self):
        return self._detector.stats

    @property
    def predicted(self) -> List:
        """Validated predictive races so far (``predict_window > 0``)."""
        return self._detector.predicted

    # -- the streaming loop ------------------------------------------------

    def process(self, event: Event) -> Optional[List[CommutativityRace]]:
        """Consume one event; races found on it come back immediately."""
        found = self._detector.process(event)
        self.events_processed += 1
        self._since_maintenance += 1
        if self._since_maintenance >= self._window:
            self.maintain()
        return found

    def run(self, events) -> List[CommutativityRace]:
        """Process an event iterable, then :meth:`finish`."""
        for event in events:
            self.process(event)
        return self.finish()

    def maintain(self) -> None:
        """One maintenance cycle: flush, retire, compact, deflate, sample."""
        self._since_maintenance = 0
        self.windows_completed += 1
        detector = self._detector
        detector.flush_batch()
        self.threads_retired += len(
            detector.happens_before.retire_joined_threads())
        if self._compact_clocks:
            self.components_compacted += (
                detector.compact_dead_clock_components())
        # Adaptive detectors re-certify inflated points back to O(1)
        # epochs against the live clocks (no-op otherwise): contention
        # that has since been ordered stops taxing every later check.
        self.points_deflated += detector.deflate_point_clocks()
        if self._predict:
            # Bounded prediction windows flush here: candidates queued
            # since the last window resolve now (closures only look
            # backward, so incremental flushes equal one final pass).
            detector.predict()
        active = detector.active_point_count()
        interned = detector.interned_point_count()
        if active > self.peak_active:
            self.peak_active = active
        if interned > self.peak_interned:
            self.peak_interned = interned
        obs = self._obs
        if obs is not None:
            # Gauges merge by max, so one name per quantity is a running
            # high-water mark for free (and so are the per-object ones —
            # breakdowns would sum across samples and worker absorbs).
            obs.gauge("active_points", active)
            obs.gauge("interned_points", interned)
            for obj, (act, inte) in detector.per_object_footprint().items():
                obs.gauge(f"active_points_hwm[{obj}]", act)
                obs.gauge(f"interned_points_hwm[{obj}]", inte)
        if self._on_window is not None:
            self._on_window(self)

    def finish(self) -> List[CommutativityRace]:
        """Final maintenance (no extra prune — cadence stays batch-equal)."""
        self.maintain()
        return self._detector.races


@dataclass
class FollowStatus:
    """How a :func:`follow_analyze` run ended."""

    #: The header's declared event count was fully read.
    complete: bool
    events_read: int
    declared_events: Optional[int]
    #: Byte offset of the first unread (possibly partial) record — a new
    #: ``TailReader(path, resume_offset=...)`` picks up exactly here.
    resume_offset: int
    #: The file ended mid-record (writer killed or still flushing).
    truncated_tail: bool
    #: The header's root thread id (``None`` if the header never
    #: appeared).  Together with ``declared_events`` this makes the
    #: status complete resume metadata: feed it to
    #: :meth:`~repro.core.serialize.TailReader.from_status` so a resumed
    #: reader can still recognize end-of-trace.
    root: Any = None


def follow_analyze(
    path: str,
    build_analyzer: Callable[[Any], StreamAnalyzer],
    poll_interval: float = 0.05,
    idle_timeout: Optional[float] = 10.0,
    reader: Optional[TailReader] = None,
) -> tuple:
    """Follow a trace file being written and analyze it incrementally.

    Waits for the header (the analyzer's root thread id comes from it),
    calls ``build_analyzer(root)``, then feeds every complete event to
    the analyzer as it appears.  Ends when the declared event count has
    been read or after ``idle_timeout`` seconds without progress — a
    writer killed mid-record therefore stalls the reader for at most the
    idle budget, never forever, and the returned status carries the
    resume offset.  Returns ``(analyzer, FollowStatus)``; ``analyzer`` is
    ``None`` if the header never appeared.
    """
    if reader is None:
        reader = TailReader(path)
    analyzer: Optional[StreamAnalyzer] = None
    idle = 0.0
    while True:
        events = reader.poll()
        if analyzer is None and reader.header_ready:
            analyzer = build_analyzer(reader.root)
        for event in events:
            analyzer.process(event)
        if reader.done:
            break
        if events:
            idle = 0.0
        elif idle_timeout is not None:
            idle += poll_interval
            if idle >= idle_timeout:
                break
        _time.sleep(poll_interval)
    if analyzer is not None:
        analyzer.finish()
    status = FollowStatus(
        complete=reader.done,
        events_read=reader.events_read,
        declared_events=reader.declared_events,
        resume_offset=reader.offset,
        truncated_tail=reader.truncated,
        root=reader.root,
    )
    return analyzer, status
