"""The commutativity race detector — Algorithm 1 of the paper.

Adaptive point clocks (``adaptive=True``, the default)
------------------------------------------------------

FastTrack's insight — most variables are accessed by one thread at a time,
so a scalar *epoch* ``c@t`` usually suffices in place of a vector clock —
transfers to access points.  A point whose touches are totally ordered
keeps an epoch: its latest toucher's ``(tid, stamp)`` plus the exact
accumulated clock the pair certifies (see
:class:`~repro.core.plan._PointEpoch`), so the phase-1 ordering test and
the phase-2 join are one integer compare each.  Only a *concurrent*
cross-thread touch — genuine contention, where no single-component
certificate exists — inflates the point to a bare vector clock, and the
next ordered touch (or a maintenance window, see
:meth:`CommutativityRaceDetector.deflate_point_clocks`) deflates it
back.  Unlike FastTrack's write-epoch (which forgets racy history and
only guarantees the same *first* race per variable), this adaptation is
exactly report-preserving — epochs carry the very clock the plain
detector would store, so the equivalence suite checks byte-for-byte
equality with the plain detector, reports included.


The detector consumes a trace event-by-event.  Synchronization events update
the happens-before state (Table 1, delegated to
:class:`~repro.core.hb.HappensBeforeTracker`); each action event
``e = τ : o.m(~x)/~y`` runs the two phases of Algorithm 1:

Phase 1 (race check)
    for each access point ``pt ∈ ηo(o.m(~x)/~y)``:
    for each ``pt' ∈ active(o) ∩ Co(pt)``:
    if ``pt'.vc ⋢ vc(e)`` report a commutativity race.

Phase 2 (state update)
    for each ``pt ∈ ηo(...)``: ``pt.vc ← pt.vc ⊔ vc(e)`` (initializing and
    activating ``pt`` on first touch).

The intersection in phase 1 can be enumerated two ways (Section 5.4):

* :attr:`Strategy.ENUMERATE` — iterate the finite ``Co(pt)`` and probe
  ``active(o)`` by hash lookup.  Constant work per action for ECL-derived
  representations (Theorem 6.6), independent of trace length.
* :attr:`Strategy.SCAN` — iterate ``active(o)`` and test ``Co`` membership.
  Linear in ``|active(o)|`` but the only option when ``Co(pt)`` is infinite
  (naive representations).

:attr:`Strategy.AUTO` picks per representation.  The detector counts its
conflict checks so the Fig. 4 / scaling benchmarks can report comparisons
performed, not just wall time.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass, field
from time import perf_counter_ns
from typing import Any, Callable, Dict, List, Optional, Tuple

from .access_points import AccessPoint, AccessPointRepresentation, SchemaId
from .errors import MonitorError, SpecificationError
from .events import Action, Event, EventKind, ObjectId
from .hb import HappensBeforeTracker
from .plan import (CheckPlan, _BatchBuffer, _PointClock, _PointEpoch,
                   _as_clock, _point_ordered, _process_compiled,
                   compile_check_plan)
from .races import CommutativityRace
from .vector_clock import Tid, VectorClock

#: Breakdown key standing in for "this candidate point was never touched"
#: in the per-(method, method) check attribution: the probe found nothing
#: active, so there is no prior method to attribute the check to.
UNTOUCHED = "∅"

__all__ = ["Strategy", "DetectorStats", "CommutativityRaceDetector",
           "UNTOUCHED"]


class Strategy(enum.Enum):
    """How phase 1 enumerates ``active(o) ∩ Co(pt)``."""

    AUTO = "auto"
    ENUMERATE = "enumerate"
    SCAN = "scan"


@dataclass
class DetectorStats:
    """Operation counters for the complexity experiments.

    ``conflict_checks`` counts individual point-vs-point conflict/membership
    probes in phase 1 — the quantity the paper's Θ(1) vs Θ(|A|) argument is
    about (and what Fig. 4 contrasts with the direct approach).
    """

    events: int = 0
    actions: int = 0
    points_touched: int = 0
    conflict_checks: int = 0
    races: int = 0
    #: adaptive mode: points inflated to a bare vector clock by a
    #: concurrent cross-thread touch (a point can promote again after a
    #: deflation, so this counts inflation *events*, not points)
    epoch_promotions: int = 0
    #: adaptive mode: inflated points re-certified back to epochs at
    #: maintenance windows (:meth:`~CommutativityRaceDetector.
    #: deflate_point_clocks`; ordered-touch re-deflations on the hot path
    #: are not counted — they are the representation's normal steady state)
    epoch_deflations: int = 0
    #: active points reclaimed by :meth:`~CommutativityRaceDetector.
    #: prune_ordered_points` over the detector's lifetime
    points_pruned: int = 0
    #: intern-table entries dropped alongside pruned points (the compiled
    #: path's ``(schema, value) -> AccessPoint`` table would otherwise
    #: retain every value-carrying point ever touched — pruning without
    #: eviction bounds ``active(o)`` but not memory)
    interned_points_evicted: int = 0

    def checks_per_action(self) -> float:
        return self.conflict_checks / self.actions if self.actions else 0.0

    def absorb(self, other: "DetectorStats") -> None:
        """Accumulate another detector's counters into this one.

        Used by the sharded offline analyzer to merge per-shard stats; sums
        every counter field so future counters cannot be silently dropped.
        """
        for fld in dataclasses.fields(self):
            setattr(self, fld.name,
                    getattr(self, fld.name) + getattr(other, fld.name))


@dataclass
class _ObjectState:
    """Per-object auxiliary state attached at registration.

    The paper notes (Section 5.3) that auxiliary state can be attached to
    the object itself and reclaimed with it; :meth:`CommutativityRaceDetector.
    release_object` implements that optimization.
    """

    representation: AccessPointRepresentation
    strategy: Strategy
    #: compiled ENUMERATE fast path (None: generic interpreted path)
    plan: Optional[CheckPlan] = None
    #: ``active(o)`` as an insertion-ordered dict-set: scan order must be
    #: first-touch order, not hash order, so race reports come out
    #: identical across processes (hash(AccessPoint) is not stable across
    #: interpreters — spawn workers would otherwise reorder them).
    active: Dict[AccessPoint, None] = field(default_factory=dict)
    point_clock: Dict[AccessPoint, _PointClock] = field(default_factory=dict)
    #: observability only: which method last touched each point, so race
    #: and check attribution can name (method, method) pairs.  Maintained
    #: (and consulted) only when the detector carries an enabled registry.
    point_method: Dict[AccessPoint, str] = field(default_factory=dict)
    #: compiled path: ``(schema, value) -> canonical AccessPoint``, so the
    #: state dicts are probed with identity-cached hashes instead of fresh
    #: dataclass instances.  ηo-output validation happens on intern miss —
    #: once per distinct pair, not once per action.
    interned: Dict[Tuple[SchemaId, Any], AccessPoint] = field(
        default_factory=dict)
    #: compiled path: cached ``Co(pt)`` tuples of canonical points, so
    #: phase 1 stops driving the conflicting_candidates generator.
    candidates: Dict[AccessPoint, Tuple[AccessPoint, ...]] = field(
        default_factory=dict)


class CommutativityRaceDetector:
    """Online commutativity race detection (the paper's RD2 analysis).

    Usage::

        det = CommutativityRaceDetector(root=0)
        det.register_object("o", dictionary_representation())
        det.process(fork_event(0, 1))
        det.process(action_event(1, Action("o", "put", ("k", "v"), (NIL,))))
        ...
        det.races  # list of CommutativityRace reports

    Parameters
    ----------
    root:
        Thread id of the initial thread.
    strategy:
        Global phase-1 strategy; ``AUTO`` selects ENUMERATE for bounded
        representations and SCAN otherwise, per object.
    on_race:
        Optional callback invoked for each race as it is found (the paper's
        on-the-fly reporting); return value ignored.
    keep_reports:
        When false, races are counted but not accumulated (used by long
        benchmark runs to keep memory flat).
    adaptive:
        When true (the default), per-point clocks are epoch-adaptive:
        a clock-carrying ``(tid, stamp)`` epoch with O(1) ordering tests
        and joins, inflated to a bare vector clock only on concurrent
        cross-thread contention and deflated back on ordered touches or
        at maintenance windows.  Exactly report-preserving;
        ``adaptive=False`` keeps plain vector clocks everywhere (the
        hot-path benchmark's PR 4 baseline, and the reference the
        equivalence suite compares against byte for byte).
    obs:
        Optional :class:`~repro.obs.registry.Registry`.  When enabled, the
        detector attributes conflict checks, races and pruned points per
        object and per (method, method) pair, and samples the ``stamp``
        (happens-before) and ``check`` (Algorithm 1 phases 1-2) timers —
        every ``obs.sample_interval``-th event is measured, keeping the
        instrumented hot path within the benchmark gate's 5% overhead
        budget.  A disabled registry is equivalent to ``None``: the hot
        path pays one ``is None`` test and nothing else.
    compiled:
        When true (the default), ENUMERATE-strategy objects whose
        representation is a bounded :class:`~repro.core.access_points.
        SchemaRepresentation` run Algorithm 1 through a compiled
        :class:`~repro.core.plan.CheckPlan` (interned access points,
        cached candidate tuples, no per-action ηo validation).  Verdict
        and counter preserving; ``compiled=False`` keeps the generic
        interpreted path everywhere (the hot-path benchmark's baseline).
    batch_window:
        When > 0, compiled-plan actions are accumulated in a columnar
        :class:`~repro.core.plan._BatchBuffer` of up to ``batch_window``
        stamped actions and checked in one flat pass per window (struct-
        of-arrays columns, per-event dispatch hoisted out).  Events are
        still applied strictly in trace order, so verdicts, report order
        and obs attribution are byte-identical to ``batch_window=0`` —
        but races surface on the ``process`` call that *flushes* the
        window, not necessarily the one that observed the racing action
        (``races``/``on_race`` ordering is unaffected).  Callers driving
        ``process`` directly must call :meth:`flush_batch` (``run`` and
        every maintenance entry point flush automatically).
    predict_window:
        When > 0, the detector additionally runs the predictive pass of
        :mod:`repro.core.predict` over the processed trace: every event
        is logged (stamped), and :meth:`predict` — called by ``run``
        automatically, or at maintenance windows by the streaming
        analyzer — resolves candidate conflicting pairs at most
        ``predict_window`` same-object actions apart into ``predicted``.
        The witnessed ``races`` list is untouched: prediction only adds
        ``predicted:`` reports, each validated by replaying its witness
        reordering through a fresh standard detector.
    """

    def __init__(
        self,
        root: Tid = 0,
        strategy: Strategy = Strategy.AUTO,
        on_race: Optional[Callable[[CommutativityRace], None]] = None,
        keep_reports: bool = True,
        prune_interval: int = 0,
        adaptive: bool = True,
        obs=None,
        compiled: bool = True,
        batch_window: int = 0,
        predict_window: int = 0,
    ):
        if batch_window < 0:
            raise MonitorError(
                f"batch_window must be >= 0, got {batch_window}")
        if predict_window < 0:
            raise MonitorError(
                f"predict_window must be >= 0, got {predict_window}")
        self._root = root
        self._hb = HappensBeforeTracker(root=root)
        self._strategy = strategy
        self._on_race = on_race
        self._keep_reports = keep_reports
        self._prune_interval = prune_interval
        self._adaptive = adaptive
        self._compiled = compiled
        self._batch = _BatchBuffer(self, batch_window) if batch_window else None
        self._actions_since_prune = 0
        self._objects: Dict[ObjectId, _ObjectState] = {}
        self.races: List[CommutativityRace] = []
        self.stats = DetectorStats()
        self._predict_window = predict_window
        self._predict_log: Optional[List[Event]] = (
            [] if predict_window else None)
        # Touched-point capture: the compiled loop resolves ηo for every
        # action anyway, so in predict mode it stashes the tuple and the
        # predictor reuses it instead of re-evaluating the formulas on
        # refeed.  Keyed by log position; missing entries (batch path,
        # plan-less objects) fall back to recomputing.
        self._predict_points: Optional[Dict[int, tuple]] = (
            {} if predict_window else None)
        self._predict_last: Optional[tuple] = None
        self._predictor = None
        self.predicted: List = []
        # Every _obs_* attribute is assigned in both modes so enabled and
        # disabled instances share one attribute layout: CPython keeps
        # instance dicts on the class's shared-key table only while all
        # instances set the same attributes in the same order, and losing
        # that pessimizes every self.<attr> load in the hot loop — for
        # both modes, which would poison the overhead benchmark's baseline.
        self._obs = obs if (obs is not None and obs.enabled) else None
        enabled = self._obs is not None
        self._obs_interval = self._obs.sample_interval if enabled else 0
        self._obs_tick = 1            # sample the first event
        self._obs_sampled = False
        # Hot-path breakdowns are grabbed once as raw dicts; the registry
        # merge machinery sees them by name.
        self._obs_checks_by_object = (
            self._obs.breakdown("checks_by_object") if enabled else None)
        self._obs_checks_by_pair = (
            self._obs.breakdown("checks_by_pair") if enabled else None)
        self._obs_races_by_object = (
            self._obs.breakdown("races_by_object") if enabled else None)
        self._obs_races_by_pair = (
            self._obs.breakdown("races_by_pair") if enabled else None)
        self._obs_pruned_by_object = (
            self._obs.breakdown("pruned_by_object") if enabled else None)
        self._obs_stamp_timer = self._obs.timer("stamp") if enabled else None
        self._obs_check_timer = self._obs.timer("check") if enabled else None

    # -- object lifecycle ------------------------------------------------------

    def register_object(self, obj: ObjectId,
                        representation: AccessPointRepresentation,
                        strategy: Optional[Strategy] = None, *,
                        plan: Optional[CheckPlan] = None) -> None:
        """Attach an access point representation to a shared object.

        ``plan`` lets callers supply a pre-compiled check plan (the sharded
        analyzer compiles once and ships the plan to every worker);
        normally it is compiled here when the resolved strategy is
        ENUMERATE and the detector runs compiled.
        """
        if obj in self._objects:
            raise MonitorError(f"object {obj!r} registered twice")
        chosen = strategy or self._strategy
        if chosen is Strategy.AUTO:
            chosen = (Strategy.ENUMERATE if representation.bounded
                      else Strategy.SCAN)
        if chosen is Strategy.ENUMERATE and not representation.bounded:
            raise MonitorError(
                f"object {obj!r}: ENUMERATE strategy requires a bounded "
                f"representation ({representation!r} is unbounded)")
        if chosen is not Strategy.ENUMERATE:
            plan = None
        elif plan is None and self._compiled:
            plan = compile_check_plan(representation)
        self._objects[obj] = _ObjectState(representation, chosen, plan=plan)

    def release_object(self, obj: ObjectId) -> None:
        """Drop the auxiliary state of a dead object (Section 5.3).

        No new races can be reported on a reclaimed object, so its active
        points and clocks can be discarded.
        """
        self._objects.pop(obj, None)

    def flush_batch(self) -> Optional[List[CommutativityRace]]:
        """Drain the columnar batch buffer, if one is pending.

        Every maintenance entry point (pruning, compaction, deflation) and
        :meth:`run` flushes automatically; callers that drive
        :meth:`process` directly with ``batch_window > 0`` flush here
        once the trace ends.  No-op without batching.
        """
        batch = self._batch
        if batch is not None and batch.count:
            return batch.flush()
        return None

    def prune_ordered_points(self) -> int:
        """Reclaim active points that can never race again.

        This is the optimization Section 5.3 leaves as future work
        ("remove unnecessary active access points").  The criterion: a
        point ``pt`` is dead once ``pt.vc ⊑ T(τ)`` for every thread τ that
        may still perform events (threads not yet joined).  Every future
        event ``e`` by a live thread τ — or by any thread it transitively
        forks — satisfies ``vc(e) ⊒ T(τ) ⊒ pt.vc``, so phase 1's
        ``pt.vc ⋢ vc(e)`` test can never fire on ``pt`` again.

        After a ``joinall`` this empties the active sets entirely, bounding
        the detector's memory by the *concurrent* footprint instead of the
        whole execution history.  Returns the number of points reclaimed.
        Enable automatic invocation with the ``prune_interval`` constructor
        parameter (every N actions).
        """
        self.flush_batch()
        live_clocks = self._hb.live_clocks()
        reclaimed = 0
        for obj, state in self._objects.items():
            reclaimed += self._prune_state(obj, state, live_clocks)
        return reclaimed

    def prune_object_with_clocks(self, obj: ObjectId,
                                 live_clocks) -> int:
        """Prune one object's points against externally supplied clocks.

        The sharded pipeline's shard workers replay per-object actions
        with a pristine happens-before tracker of their own, so they
        cannot compute the live-thread clocks themselves; phase A captures
        them at each prune boundary and the workers apply them here —
        reaching the exact per-object state (and stats) the sequential
        detector's :meth:`prune_ordered_points` would at that boundary.
        """
        self.flush_batch()
        state = self._objects.get(obj)
        if state is None:
            return 0
        return self._prune_state(obj, state, live_clocks)

    def _prune_state(self, obj: ObjectId, state: _ObjectState,
                     live_clocks) -> int:
        """Prune one object's dead points and evict their interned traces."""
        point_clock = state.point_clock
        doomed = [pt for pt in state.active
                  if all(_point_ordered(point_clock[pt], clock)
                         for clock in live_clocks)]
        if not doomed:
            return 0
        for pt in doomed:
            state.active.pop(pt, None)
            del point_clock[pt]
            state.point_method.pop(pt, None)
        # Evict the compiled path's canonical instances along with the
        # points: every interned entry whose point is no longer active is
        # dead weight — the pruned points themselves, plus probe-only
        # candidates that were interned for their sake and would otherwise
        # accumulate one entry per distinct value forever.  Candidate
        # tuples keyed by a pruned point, or referencing an evicted
        # instance, are invalidated too (a later touch re-interns and
        # rebuilds them; AccessPoint equality is by value, so verdicts
        # cannot depend on which instance survives).
        if state.interned:
            interned = state.interned
            stale = [key for key, pt in interned.items()
                     if pt not in point_clock]
            if stale:
                evicted = set()
                for key in stale:
                    evicted.add(interned.pop(key))
                self.stats.interned_points_evicted += len(stale)
                candidates = state.candidates
                dead_keys = [pt for pt, peers in candidates.items()
                             if pt in evicted
                             or any(peer in evicted for peer in peers)]
                for pt in dead_keys:
                    del candidates[pt]
        if self._obs is not None:
            table = self._obs_pruned_by_object
            table[obj] = table.get(obj, 0) + len(doomed)
        self.stats.points_pruned += len(doomed)
        return len(doomed)

    def active_point_count(self) -> int:
        """Total |active(o)| across objects (for memory accounting)."""
        return sum(len(state.active) for state in self._objects.values())

    def interned_point_count(self) -> int:
        """Total interned (schema, value) entries across objects.

        The compiled path's other growing table — together with
        :meth:`active_point_count` this is the detector's per-object
        memory footprint in points.
        """
        return sum(len(state.interned) for state in self._objects.values())

    def per_object_footprint(self) -> Dict[ObjectId, Tuple[int, int]]:
        """``obj -> (active, interned)`` point counts, for HWM gauges."""
        return {obj: (len(state.active), len(state.interned))
                for obj, state in self._objects.items()}

    def deflate_point_clocks(self) -> int:
        """Re-certify inflated points back to epochs where provably sound.

        The coverage certificate: for a point clock ``V``, if every live
        thread's clock covers ``V`` on all components except (at most)
        one ``t``, then for any future event clock ``C`` — which dominates
        some live thread's current clock through fork inheritance and
        monotonicity — ``V ⊑ C ⟺ V[t] ≤ C[t]``.  The point can then carry
        the epoch ``(t, V[t], V)`` instead of the bare clock: same stored
        clock, same verdicts, same reports, but O(1) comparisons again
        (``t`` may even be a dead thread's component — the certificate
        only needs the live clocks to cover the rest).

        A point covered on *every* component deflates on its first
        component; pruning would reclaim it entirely, but deflation is
        cheaper than a prune cycle and keeps the point reportable.
        Points with two or more uncovered components stay inflated —
        still-racy state is exactly where the full clock earns its keep.

        Meant for maintenance windows (:class:`~repro.core.stream.
        StreamAnalyzer` calls it every window); returns the number of
        points deflated.  No-op for non-adaptive detectors.
        """
        if not self._adaptive:
            return 0
        self.flush_batch()
        live_clocks = self._hb.live_clocks()
        if not live_clocks:
            return 0
        deflated = 0
        for state in self._objects.values():
            point_clock = state.point_clock
            for pt, prior in point_clock.items():
                if type(prior) is _PointEpoch:
                    continue
                uncovered = prior.uncovered_components(live_clocks)
                if len(uncovered) > 1:
                    continue
                if uncovered:
                    tid = uncovered[0]
                else:
                    entries = list(prior.items())
                    if not entries:
                        continue  # bottom clock: nothing to certify
                    tid = entries[0][0]
                point_clock[pt] = _PointEpoch(tid, prior[tid], prior)
                deflated += 1
        self.stats.epoch_deflations += deflated
        return deflated

    def compact_dead_clock_components(self) -> int:
        """Drop dead threads' clock components everywhere it is sound.

        After a join the joined thread's component stops advancing, but
        every clock that absorbed it keeps the entry forever — over a
        never-ending fork/join workload the *width* of every clock grows
        with the total thread count even though the live set stays small.
        This retires a dead component ``u`` when all live threads agree on
        its value ``c`` and no lock clock or active point clock exceeds
        ``c`` at ``u``: every future stamp would then carry exactly ``c``
        at ``u`` and every phase-1 comparison at ``u`` would pass, so
        removing the component from thread clocks, lock clocks and point
        clocks cannot change any verdict.  Reported clocks *narrow* (the
        dead entries disappear from race reports), so this is opt-in for
        streaming mode, and the equivalence suite compares it via verdict
        keys.

        Returns the number of components retired.  Point clocks are
        rebuilt, never mutated: reported races may alias them.
        """
        self.flush_batch()
        floors = []
        for state in self._objects.values():
            for prior in state.point_clock.values():
                floors.append(_as_clock(prior))
        stripped = self._hb.compact_dead_components(floors)
        if not stripped:
            return 0
        dead = set(stripped)
        for state in self._objects.values():
            point_clock = state.point_clock
            for pt, prior in point_clock.items():
                if type(prior) is _PointEpoch:
                    entries = dict(prior.clock.items())
                    if not any(tid in dead for tid in entries):
                        continue
                    narrowed = VectorClock._trusted(
                        {tid: stamp for tid, stamp in entries.items()
                         if tid not in dead})
                    if prior.tid in dead:
                        # The certificate component itself is gone (a
                        # future stamp would read 0 there): fall back to
                        # the narrowed full clock.  A maintenance
                        # deflation can re-certify it on a live component.
                        point_clock[pt] = narrowed
                    else:
                        # The certificate's thread is live, so its
                        # component survives compaction on both sides of
                        # every future comparison: keep the epoch, narrow
                        # its carried clock.
                        point_clock[pt] = _PointEpoch(
                            prior.tid, prior.stamp, narrowed)
                    continue
                entries = dict(prior.items())
                if any(tid in dead for tid in entries):
                    point_clock[pt] = VectorClock._trusted(
                        {tid: stamp for tid, stamp in entries.items()
                         if tid not in dead})
        return len(stripped)

    def registered_objects(self):
        return self._objects.keys()

    # -- event processing --------------------------------------------------------

    def _obs_advance(self) -> bool:
        """Tick the sampling window; true on the events that get measured."""
        self._obs_tick -= 1
        if self._obs_tick <= 0:
            self._obs_tick = self._obs_interval
            self._obs_sampled = True
            return True
        self._obs_sampled = False
        return False

    def process(self, event: Event) -> Optional[List[CommutativityRace]]:
        """Consume one trace event; return races found on this event, if any."""
        if self._obs is not None:
            # Inlined _obs_advance(): this runs on every event, and a
            # method call alone would eat a fifth of the 5% overhead
            # budget the benchmark gate enforces.
            self._obs_tick -= 1
            if self._obs_tick <= 0:
                self._obs_tick = self._obs_interval
                self._obs_sampled = True
                start = perf_counter_ns()
                clock = self._hb.observe(event)
                self._obs_stamp_timer.record(perf_counter_ns() - start,
                                             self._obs_interval)
            else:
                self._obs_sampled = False
                clock = self._hb.observe(event)
        else:
            clock = self._hb.observe(event)
        if self._predict_log is not None:
            self._predict_log.append(event)
            self._predict_last = None
        self.stats.events += 1
        if event.kind is not EventKind.ACTION:
            return None
        found = self._process_action(event, clock)
        if self._predict_log is not None and self._predict_last is not None:
            self._predict_points[len(self._predict_log) - 1] = (
                self._predict_last)
        if self._prune_interval:
            self._actions_since_prune += 1
            if self._actions_since_prune >= self._prune_interval:
                self._actions_since_prune = 0
                self.prune_ordered_points()
        return found

    def process_stamped(self, event: Event) -> Optional[List[CommutativityRace]]:
        """Consume one *pre-stamped* event, trusting ``event.clock``.

        The offline two-phase pipeline (:mod:`repro.core.parallel`) computes
        every ``vc(e)`` in a single sequential happens-before pass and then
        replays each object's actions independently; this entry point runs
        phases 1 and 2 of Algorithm 1 against the precomputed clock instead
        of advancing the tracker's own happens-before state.
        """
        if event.clock is None:
            raise MonitorError(
                f"process_stamped needs a stamped event (clock is None): "
                f"{event}")
        if self._predict_log is not None:
            self._predict_log.append(event)
            self._predict_last = None
        self.stats.events += 1
        if event.kind is not EventKind.ACTION:
            return None
        found = self._process_action(event, event.clock)
        if self._predict_log is not None and self._predict_last is not None:
            self._predict_points[len(self._predict_log) - 1] = (
                self._predict_last)
        return found

    def _process_action(self, event: Event,
                        clock: VectorClock) -> Optional[List[CommutativityRace]]:
        action = event.action
        state = self._objects.get(action.obj)
        if state is None:
            # Unregistered objects are not analyzed (RoadRunner-style tools
            # likewise only track instrumented classes).
            return None
        self.stats.actions += 1
        if state.plan is not None:
            batch = self._batch
            if batch is not None:
                return batch.enqueue(state, action, event.index, event.tid,
                                     clock)
            return _process_compiled(self, state, action, event.tid, clock)
        if self._batch is not None and self._batch.count:
            # Plan-less objects run inline; drain the buffer first so the
            # global race order stays the sequential one.
            self._batch.flush()
        rep = state.representation
        points = rep.points_of(action)
        self.stats.points_touched += len(points)

        # Sampled actions pay for timing + attribution with their counts
        # weight-scaled back up; unsampled actions pay only for this one
        # flag check.  The point->method map is likewise maintained only on
        # sampled actions (an AccessPoint dict store costs ~1µs, a fifth of
        # an average event), so method-pair attribution is exact at
        # sample_interval=1 and statistical otherwise.
        sampled = self._obs is not None and self._obs_sampled
        if sampled:
            checks_before = self.stats.conflict_checks
            start = perf_counter_ns()

        # Phase 1: check for commutativity races.
        found: List[CommutativityRace] = []
        for pt in points:
            if state.strategy is Strategy.ENUMERATE:
                self._check_enumerate(state, pt, event, clock, found)
            else:
                self._check_scan(state, pt, event, clock, found)

        if sampled:
            delta = ((self.stats.conflict_checks - checks_before)
                     * self._obs_interval)
            table = self._obs_checks_by_object
            table[action.obj] = table.get(action.obj, 0) + delta
            for pt in points:
                self._attribute_checks(state, pt, action.method)

        # Phase 2: update auxiliary state.
        tid = event.tid
        adaptive = self._adaptive
        methods = state.point_method if sampled else None
        point_clock = state.point_clock
        for pt in points:
            if methods is not None:
                methods[pt] = action.method
            prior = point_clock.get(pt)
            if prior is None:
                if adaptive:
                    point_clock[pt] = _PointEpoch(tid, clock[tid], clock)
                else:
                    point_clock[pt] = clock
                state.active[pt] = None
            elif type(prior) is _PointEpoch:
                if prior.tid == tid or prior.stamp <= clock[prior.tid]:
                    # Ordered before this event (same thread, or the
                    # epoch certificate holds): the join *is* this
                    # event's clock, which certifies itself.
                    point_clock[pt] = _PointEpoch(tid, clock[tid], clock)
                else:
                    # Concurrent cross-thread touch — genuine contention:
                    # inflate to the full joined clock.
                    self.stats.epoch_promotions += 1
                    point_clock[pt] = prior.clock.join(clock)
            elif adaptive and prior.leq(clock):
                # The inflated clock is dominated again: this event's
                # clock subsumes it, so the point deflates back.
                point_clock[pt] = _PointEpoch(tid, clock[tid], clock)
            else:
                point_clock[pt] = prior.join(clock)
        if sampled:
            self._obs_check_timer.record(perf_counter_ns() - start,
                                         self._obs_interval)
        return found or None

    def _attribute_checks(self, state: _ObjectState, pt: AccessPoint,
                          method: str) -> None:
        """Sampled per-(method, method) attribution of phase-1 probes.

        Re-enumerates the candidates the strategy just probed and charges
        each probe to ``(current method, prior toucher's method)`` —
        :data:`UNTOUCHED` when the probe found no active point or the
        prior toucher was never sampled.  Runs only on sampled actions;
        counts carry weight ``sample_interval`` so the breakdown estimates
        the true totals.  At ``sample_interval=1`` (the offline default)
        every action is sampled and the attribution is exact.
        """
        pairs = self._obs_checks_by_pair
        methods = state.point_method
        weight = self._obs_interval
        if state.plan is not None:
            # Compiled path: the cached Co(pt) tuple is exactly what
            # phase 1 just probed (and it is guaranteed present — phase 1
            # interned it before attribution runs).
            candidates = state.candidates[pt]
        elif state.strategy is Strategy.ENUMERATE:
            candidates = state.representation.conflicting_candidates(pt)
        else:
            candidates = state.active
        for candidate in candidates:
            key = (method, methods.get(candidate, UNTOUCHED))
            pairs[key] = pairs.get(key, 0) + weight

    def _check_enumerate(self, state: _ObjectState, pt: AccessPoint,
                         event: Event, clock: VectorClock,
                         found: List[CommutativityRace]) -> None:
        """Iterate Co(pt), probe active(o) — Θ(|Co(pt)|) per point."""
        for candidate in state.representation.conflicting_candidates(pt):
            self.stats.conflict_checks += 1
            prior_clock = state.point_clock.get(candidate)
            if prior_clock is None:
                continue  # candidate not active
            if not _point_ordered(prior_clock, clock):
                self._report(state, pt, candidate, _as_clock(prior_clock),
                             event.action, event.tid, clock, found)

    def _check_scan(self, state: _ObjectState, pt: AccessPoint,
                    event: Event, clock: VectorClock,
                    found: List[CommutativityRace]) -> None:
        """Iterate active(o), test Co membership — Θ(|active(o)|) per point."""
        rep = state.representation
        for active_pt in state.active:
            self.stats.conflict_checks += 1
            if not rep.conflicts(pt, active_pt):
                continue
            prior_clock = state.point_clock[active_pt]
            if not _point_ordered(prior_clock, clock):
                self._report(state, pt, active_pt, _as_clock(prior_clock),
                             event.action, event.tid, clock, found)

    def _report(self, state: _ObjectState, pt: AccessPoint,
                prior_pt: AccessPoint, prior_clock: VectorClock,
                action: Action, tid: Tid, clock: VectorClock,
                found: List[CommutativityRace]) -> None:
        race = CommutativityRace(
            obj=action.obj,
            current=action,
            current_clock=clock,
            current_tid=tid,
            point=pt,
            prior_point=prior_pt,
            prior_clock=prior_clock,
        )
        self.stats.races += 1
        if self._obs is not None:
            # Per-object counts are exact (string-keyed, cheap); the
            # method-pair attribution needs an AccessPoint lookup, so it
            # rides the sampling window like the check attribution does
            # and is exact only at sample_interval=1.
            obj_table = self._obs_races_by_object
            obj_table[race.obj] = obj_table.get(race.obj, 0) + 1
            if self._obs_sampled:
                pair = (action.method,
                        state.point_method.get(prior_pt, UNTOUCHED))
                pair_table = self._obs_races_by_pair
                pair_table[pair] = (pair_table.get(pair, 0)
                                    + self._obs_interval)
        found.append(race)
        if self._keep_reports:
            self.races.append(race)
        if self._on_race is not None:
            self._on_race(race)

    # -- convenience -----------------------------------------------------------

    def run(self, events) -> List[CommutativityRace]:
        """Process an iterable of events; return all races found."""
        for event in events:
            self.process(event)
        self.flush_batch()
        if self._predict_log is not None:
            self.predict()
        return self.races

    def predict(self) -> List:
        """Resolve queued predictive candidates; return new predictions.

        Requires ``predict_window > 0``.  Incremental: feeds only events
        logged since the previous call, so the streaming analyzer can
        invoke it every maintenance window; ``predicted`` accumulates
        (sorted by original-index pair) and equals a single end-of-trace
        pass.  Witnessed ``races`` are never touched.
        """
        if self._predict_log is None:
            raise MonitorError("predict() requires predict_window > 0")
        self.flush_batch()
        predictor = self._predictor
        if predictor is None:
            from .predict import Predictor
            predictor = Predictor(
                {obj: state.representation
                 for obj, state in self._objects.items()},
                window=self._predict_window, root=self._root,
                obs=self._obs,
                plan_states={obj: state
                             for obj, state in self._objects.items()
                             if state.plan is not None},
                captured_points=self._predict_points)
            self._predictor = predictor
        if self._obs is not None:
            start = perf_counter_ns()
        predictor.feed_many(self._predict_log[predictor.events_fed:])
        fresh = predictor.flush()
        self.predicted = predictor.predicted
        if self._obs is not None:
            self._obs.timer("predict").record(perf_counter_ns() - start)
        return fresh

    @property
    def happens_before(self) -> HappensBeforeTracker:
        """The underlying happens-before state (exposed for tests/tools)."""
        return self._hb
