"""Versioned phase-A checkpoints: stamp once, survive being killed.

Phase A of the sharded pipeline (:mod:`repro.core.parallel`) is a single
sequential pass that stamps every event with its ``vc(e)`` and buckets the
per-object actions.  For the multi-hour traces the paper's evaluation runs
against, a crash near the end of that pass wastes the whole run — so the
pipeline can periodically snapshot phase-A state to a checkpoint file and
a restarted ``repro-analyze --resume-from`` continues from the last
snapshot instead of restamping from event zero.

A checkpoint captures everything phase A has accumulated at an event
boundary: the happens-before tracker (thread/lock vector clocks), the
per-object stamped-action buckets, the index of the next event to stamp,
and two *identity guards* used at resume time:

* the registered object ids (a resume with different registrations would
  silently mis-bucket actions);
* a running SHA-256 over a canonical fingerprint of every stamped event
  (:func:`event_fingerprint`), so resuming against a different — or
  edited — trace is detected by recomputing the digest over the skipped
  prefix before any event is trusted.

On-disk format (version |CHECKPOINT_VERSION|)::

    b"repro-checkpoint\\n"      magic, rejects arbitrary files cheaply
    <8-byte little-endian>      payload length
    <32 bytes>                  SHA-256 of the payload
    <payload>                   pickled Checkpoint

Writes are atomic (temp file + fsync + ``os.replace``), so a crash *during*
a checkpoint write leaves the previous complete checkpoint in place —
there is never a window where the file on disk is unusable.  Any defect a
reader can detect — bad magic, short file, digest mismatch, unknown
version, wrong trace, wrong registrations — raises
:class:`~repro.core.errors.CheckpointError`; the resuming pipeline treats
that as a tolerated fault and degrades to a full restamp.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .errors import CheckpointError
from .events import Event, EventKind, ObjectId
from .hb import HappensBeforeTracker
from .vector_clock import Tid

__all__ = [
    "CHECKPOINT_VERSION",
    "event_fingerprint",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointWriter",
    "save_checkpoint",
    "load_checkpoint",
    "write_sealed_payload",
    "read_sealed_payload",
]

MAGIC = b"repro-checkpoint\n"
_LENGTH = struct.Struct("<Q")

#: Bump when the payload layout changes; readers reject other versions
#: outright (a half-understood checkpoint is worse than a restamp).
CHECKPOINT_VERSION = 1


def event_fingerprint(event: Event) -> bytes:
    """A canonical byte string identifying one trace event.

    Covers exactly the fields phase A consumes (kind, thread, and the
    kind's payload) and nothing volatile (no clocks, no indices), so the
    fingerprint of a trace prefix is stable across runs and Python
    versions.  ``repr`` keys the encoding: trace values round-trip through
    JSONL, so their reprs are deterministic primitives/tuples.
    """
    if event.kind is EventKind.ACTION:
        act = event.action
        body = (event.kind.value, event.tid, act.obj, act.method,
                act.args, act.returns)
    else:
        body = (event.kind.value, event.tid, event.peer, event.lock,
                event.location)
    return repr(body).encode("utf-8", "backslashreplace")


@dataclass
class Checkpoint:
    """Phase-A state at an event boundary (see module docstring)."""

    version: int
    root: Tid
    next_index: int
    prefix_digest: str
    objects: List[str]
    hb: HappensBeforeTracker
    groups: Dict[ObjectId, List[Tuple[Any, ...]]]


@dataclass
class CheckpointConfig:
    """Where and how often phase A snapshots its state.

    A checkpoint is written after every ``interval`` stamped events (and
    only then — phase A's end needs no snapshot, the run is past the
    phase the checkpoint protects).  ``after_write`` is an optional
    ``(writes_so_far) -> None`` hook invoked after each completed write;
    the fault harness uses it to kill the process at a precise point.
    """

    path: str
    interval: int = 10_000
    after_write: Optional[Callable[[int], None]] = field(
        default=None, repr=False)

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ValueError(
                f"checkpoint interval must be >= 1, got {self.interval}")


def write_sealed_payload(path: str, payload: bytes,
                         magic: bytes = MAGIC) -> None:
    """Atomically write a length- and digest-sealed payload to ``path``.

    The on-disk layout is the module docstring's (magic, 8-byte length,
    SHA-256, payload); ``magic`` is parameterized so other checkpoint
    families — the detection service's per-tenant stream checkpoints —
    share the exact same atomic-write/verified-read machinery without
    masquerading as phase-A checkpoints.
    """
    digest = hashlib.sha256(payload).digest()
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, tmp_path = tempfile.mkstemp(prefix=".repro-ckpt-", dir=directory)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(magic)
            handle.write(_LENGTH.pack(len(payload)))
            handle.write(digest)
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def read_sealed_payload(path: str, magic: bytes = MAGIC) -> bytes:
    """Read and verify a sealed payload; :class:`CheckpointError` on defect."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not blob.startswith(magic):
        raise CheckpointError(f"{path} is not a repro checkpoint (bad magic)")
    header_end = len(magic) + _LENGTH.size + hashlib.sha256().digest_size
    if len(blob) < header_end:
        raise CheckpointError(f"{path} is truncated (incomplete header)")
    (length,) = _LENGTH.unpack_from(blob, len(magic))
    digest = blob[len(magic) + _LENGTH.size:header_end]
    payload = blob[header_end:]
    if len(payload) != length:
        raise CheckpointError(
            f"{path} is truncated ({len(payload)} of {length} payload bytes)")
    if hashlib.sha256(payload).digest() != digest:
        raise CheckpointError(f"{path} failed its integrity digest")
    return payload


def save_checkpoint(path: str, checkpoint: Checkpoint) -> None:
    """Atomically write ``checkpoint`` to ``path``."""
    payload = pickle.dumps(checkpoint, protocol=pickle.HIGHEST_PROTOCOL)
    write_sealed_payload(path, payload)


def load_checkpoint(path: str) -> Checkpoint:
    """Read and verify a checkpoint; :class:`CheckpointError` on any defect."""
    payload = read_sealed_payload(path)
    try:
        checkpoint = pickle.loads(payload)
    except Exception as exc:
        raise CheckpointError(
            f"{path} payload does not unpickle: {exc}") from exc
    if not isinstance(checkpoint, Checkpoint):
        raise CheckpointError(
            f"{path} does not contain a Checkpoint "
            f"(got {type(checkpoint).__name__})")
    if checkpoint.version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has unsupported checkpoint version "
            f"{checkpoint.version} (this build reads "
            f"version {CHECKPOINT_VERSION})")
    return checkpoint


class CheckpointWriter:
    """Serializes phase-A snapshots on the configured interval.

    The pipeline calls :meth:`maybe_write` after each stamped event; the
    writer decides (cheaply) whether a snapshot is due.  ``writes`` counts
    completed checkpoint files for observability and for the harness's
    ``after_write`` hook.
    """

    def __init__(self, config: CheckpointConfig):
        self.config = config
        self.writes = 0

    def maybe_write(self, stamped: int,
                    build: Callable[[], Checkpoint]) -> bool:
        """Snapshot if ``stamped`` events complete an interval; True if so."""
        if stamped % self.config.interval != 0:
            return False
        save_checkpoint(self.config.path, build())
        self.writes += 1
        if self.config.after_write is not None:
            self.config.after_write(self.writes)
        return True
