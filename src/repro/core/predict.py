"""Predictive commutativity race detection over sound trace reorderings.

The witnessed-order detector (Algorithm 1) reports a pair of conflicting
invocations only when the observed happens-before order already leaves
them unordered.  Two invocations that *could* have run in parallel — but
happened to be separated by an accidental lock hand-off or a scheduling
coincidence — come out clean.  Predictive analysis closes that gap: for
each conflicting pair ``(a, b)`` the witnessed check clears, it asks
whether some **correct reordering** of the observed trace makes the pair
concurrent, and if so reports a *predicted* commutativity race together
with a concrete witness reordering (Ang/Farzan/Mathur, "Enhanced Data
Race Prediction Through Modular Reasoning": modular per-object reasoning
is what keeps prediction tractable — exactly the shape of this repo's
per-object shard split and per-object check plans).

Correct reorderings
-------------------

A reordering of the observed trace is *correct* when it

* preserves **program order** within every thread (and is per-thread
  prefix closed: a thread's events are a prefix of its observed events),
* preserves **fork/join semantics** (a thread's events follow its fork;
  a join follows every event of the joined thread),
* respects **lock semantics** (critical sections on the same lock do not
  overlap — an acquire of a held lock cannot be scheduled before the
  matching release), and
* preserves the **relative order of every pair of conflicting
  operations** other than the candidate pair itself (the communication /
  last-writer closure: each operation observes the same conflicting
  prefix, so every recorded return value stays realizable).

The dependence relation ``D`` built here over-approximates those
constraints with forward edges only (program order, fork→first-event,
last-event→join, and conflict edges between same-object actions whose
access points conflict — plus a conservative total order per
unregistered object and per raw memory location).  Release→acquire
edges are deliberately **not** in ``D``: relaxing the observed lock
hand-off order is precisely what prediction explores; mutual exclusion
is instead enforced operationally by the witness scheduler.  More edges
can only suppress predictions, so the approximation errs sound.

The per-candidate pipeline:

1. **Candidates** — per registered object, pairs of conflicting actions
   by different threads at most ``window`` object-actions apart whose
   observed clocks are ordered (unordered conflicting pairs are already
   witnessed races).
2. **Feasibility** — the backward ``D``-closures of ``a`` and ``b``
   (excluding the direct ``a→b`` edge).  If ``a`` lies in ``b``'s
   closure through some other conflict chain, no correct reordering can
   make them adjacent: drop.
3. **Witness construction** — greedily linearize the union of the two
   closures in original-index order under lock semantics (an acquire
   whose matching release is outside the support is scheduled only as a
   last resort, since it holds its lock forever).  A stuck schedule
   means mutual exclusion forbids the reordering: drop.  Otherwise
   append ``a`` then ``b`` — adjacent, with no synchronization between
   them, so they are concurrent in the witness.
4. **Validation** — replay the witness through a fresh standard
   :class:`~repro.core.detector.CommutativityRaceDetector` with the same
   registrations and keep the prediction only if that replay itself
   reports the candidate race.  The reported
   :class:`~repro.core.races.CommutativityRace` *is* the replay's
   report, so re-replaying the witness reproduces it byte-identically.
   Prediction therefore finds strictly more races than the witnessed
   pass, never different ones.

``window`` bounds how far apart (in per-object action count) the members
of a candidate pair may be, and how far back the conflict-edge scan
looks; an unconditional chain edge to the action just beyond the scan
horizon keeps the dependence closure sound past the cap.  It does *not*
bound event retention — closures reach back to the trace start, so
prediction keeps the full event log (see ``docs/prediction.md``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import ReproError
from .events import Event, EventKind
from .plan import _intern_candidates, _intern_point
from .races import CommutativityRace

__all__ = ["PredictedRace", "Predictor", "DEFAULT_PREDICT_WINDOW"]

#: Default candidate window (``repro-analyze --predict`` with no value).
DEFAULT_PREDICT_WINDOW = 256


@dataclass(frozen=True)
class PredictedRace:
    """A commutativity race realizable in a reordering of the trace.

    ``race`` is the report produced by replaying ``witness`` through a
    standard detector (so it carries the *witness* clocks, under which
    the pair is genuinely unordered); ``pair`` names the two original
    trace indices ``(a, b)`` of the conflicting actions; ``witness`` is
    the full reordered event sequence that realizes the race.
    """

    race: CommutativityRace
    pair: Tuple[int, int]
    witness: Tuple[Event, ...]

    def __str__(self) -> str:
        return (f"predicted: {self.race} [reordering of events "
                f"{self.pair[0]} and {self.pair[1]}; witness replays "
                f"{len(self.witness)} events]")

    def snapshot(self) -> dict:
        """Deterministic JSON-ready form (the ``--stats-json`` entry)."""
        return {
            "object": str(self.race.obj),
            "race": str(self.race),
            "pair": [self.pair[0], self.pair[1]],
            "witness": [event.label() for event in self.witness],
        }


class Predictor:
    """Incremental predictive pass over one stamped trace.

    Feed every event (in trace order, already stamped — ``event.clock``
    set by the happens-before pass) through :meth:`feed`; it maintains
    the dependence index and queues candidate pairs.  :meth:`flush`
    resolves everything queued so far — the streaming analyzer calls it
    at maintenance windows, the batch detector once at the end; because
    closures only look backward, flushing early yields exactly the
    end-of-trace predictions for those candidates.

    The sharded facade instead drains candidates itself: it partitions
    :meth:`pending_loads` with the same greedy shard split phase B uses
    and calls :meth:`process_objects` per shard.  That method reads only
    the immutable (post-feed) index and writes only its return values,
    so disjoint shards may be processed concurrently; counters come back
    as a plain dict for the caller to merge race-free.
    """

    def __init__(self, representations: Dict[Any, Any],
                 window: int = DEFAULT_PREDICT_WINDOW,
                 root: Any = 0, obs=None, plan_states=None,
                 captured_points=None):
        if window < 1:
            raise ValueError(f"predict window must be >= 1, got {window}")
        self._reps = dict(representations)
        # Optional compiled-path states (``_ObjectState`` with a
        # ``CheckPlan``): lets the feed resolve ηo through the detector's
        # interned canonical points instead of re-evaluating the
        # representation formulas per action.  Points come out equal
        # either way — this is purely the compiled fast path shared.
        self._plan_states = dict(plan_states) if plan_states else {}
        # Points the detector already resolved during its own pass, keyed
        # by feed position (``CommutativityRaceDetector`` captures them
        # alongside its predict log).  A hit skips ηo entirely; misses
        # (batch path, plan-less objects, sharded refeeds) recompute.
        self._captured: Dict[int, Tuple[Any, ...]] = (
            captured_points if captured_points is not None else {})
        self._window = window
        self._root = root
        self._obs = obs if (obs is not None and obs.enabled) else None
        # -- the dependence index (append-only, one entry per event) --
        self._events: List[Event] = []
        self._clocks: List[Any] = []
        self._preds: List[List[int]] = []
        self._points: Dict[int, Tuple[Any, ...]] = {}
        # -- builder state --
        self._last_of_thread: Dict[Any, int] = {}
        self._forked_at: Dict[Any, int] = {}
        self._lock_stack: Dict[Tuple[Any, Any], List[int]] = {}
        self._match_release: Dict[int, int] = {}
        # Per-object scan list: (index, points, points id, tid) so the
        # window scan runs on locals instead of per-entry dict lookups.
        self._obj_actions: Dict[Any, List[Tuple[int, Tuple, Any, Any]]] = {}
        self._last_unregistered: Dict[Any, int] = {}
        self._last_memory: Dict[Any, int] = {}
        # Conflict verdicts repeat heavily: intern each action's points
        # tuple to a small id (one tuple hash per action, not per scanned
        # pair) and memoize verdicts per id pair.  Point tuples embed
        # their object, so one intern table serves every object.
        self._points_id: Dict[Tuple, int] = {}
        self._conflict_cache: Dict[Tuple[int, int], bool] = {}
        # -- candidates (insertion order = object first-touch order) --
        self._pending: Dict[Any, List[Tuple[int, int]]] = {}
        self.events_fed = 0
        #: lifetime counters (``predict_candidates``, ``predict_validated``,
        #: ``predict_dropped_*``) — mirrored into ``obs`` when enabled
        self.counts: Dict[str, int] = {}
        #: validated predictions, kept sorted by ``pair``
        self.predicted: List[PredictedRace] = []

    # -- building the dependence index ---------------------------------

    def feed(self, event: Event) -> None:
        """Index one stamped event; queues any new candidate pairs."""
        self.feed_many((event,))

    def feed_many(self, events) -> None:
        """Index a batch of stamped events — :meth:`feed`, loop hoisted.

        One call per predict flush instead of one per event; the batch
        loop binds the per-event state to locals, which is measurable on
        the overhead gate (prediction re-walks the whole log).
        """
        events_list = self._events
        clocks = self._clocks
        preds_list = self._preds
        last_of_thread = self._last_of_thread
        forked_at = self._forked_at
        feed_action = self._feed_action
        action_kind = EventKind.ACTION
        fork_kind = EventKind.FORK
        join_kind = EventKind.JOIN
        acquire_kind = EventKind.ACQUIRE
        release_kind = EventKind.RELEASE
        for event in events:
            index = len(events_list)
            events_list.append(event)
            clocks.append(event.clock)
            preds: List[int] = []
            tid = event.tid
            prev = last_of_thread.get(tid)
            if prev is not None:
                preds.append(prev)
            else:
                fork = forked_at.get(tid)
                if fork is not None:
                    preds.append(fork)
            last_of_thread[tid] = index
            kind = event.kind
            if kind is action_kind:
                feed_action(event, index, preds)
            elif kind is fork_kind:
                forked_at[event.peer] = index
            elif kind is join_kind:
                last = last_of_thread.get(event.peer)
                if last is None:
                    last = forked_at.get(event.peer)
                if last is not None:
                    preds.append(last)
            elif kind is acquire_kind:
                self._lock_stack.setdefault(
                    (tid, event.lock), []).append(index)
            elif kind is release_kind:
                stack = self._lock_stack.get((tid, event.lock))
                if stack:
                    self._match_release[stack.pop()] = index
            elif kind.is_memory():
                # Raw reads/writes are opaque to commutativity reasoning:
                # keep each location's accesses totally ordered
                # (conservative — it can only suppress predictions,
                # never unsound ones).
                last = self._last_memory.get(event.location)
                if last is not None:
                    preds.append(last)
                self._last_memory[event.location] = index
            preds_list.append(preds)
        self.events_fed = len(events_list)

    def _feed_action(self, event: Event, index: int,
                     preds: List[int]) -> None:
        action = event.action
        rep = self._reps.get(action.obj)
        if rep is None:
            # Unregistered objects have no conflict relation to consult:
            # preserve their observed per-object order wholesale.
            last = self._last_unregistered.get(action.obj)
            if last is not None:
                preds.append(last)
            self._last_unregistered[action.obj] = index
            return
        state = self._plan_states.get(action.obj)
        points = self._captured.get(index)
        if points is None:
            if state is not None:
                interned = state.interned
                touched = []
                for schema, value in state.plan.touches(action):
                    pt = interned.get((schema, value))
                    if pt is None:
                        pt = _intern_point(state, action, schema, value)
                    touched.append(pt)
                points = tuple(touched)
            else:
                points = rep.points_of(action)
        self._points[index] = points
        if state is None:
            try:
                pid = self._points_id.setdefault(points,
                                                 len(self._points_id))
            except TypeError:      # unhashable point value: no memoization
                pid = None
        else:
            # Compiled objects resolve conflicts through the plan's
            # candidate map below — no verdict cache needed.
            pid = None
        prior = self._obj_actions.setdefault(action.obj, [])
        window = self._window
        if len(prior) > window:
            scan = prior[-window:]
            # Chain anchor: conflicts beyond the scan horizon stay
            # transitively ordered through the capped chain of anchors.
            preds.append(prior[-window - 1][0])
        else:
            scan = prior
        clock = event.clock
        tid = event.tid
        clocks = self._clocks
        single = points[0] if len(points) == 1 else None
        if state is not None:
            # Compiled fast path: points are canonical interned instances
            # and ``Co(pt)`` is the plan's cached candidate tuple, so the
            # conflict test is tuple membership riding the identity
            # shortcut — no formula evaluation, no hashing.
            candidate_map = state.candidates
            if single is not None:
                single_cands = candidate_map.get(single)
                if single_cands is None:
                    single_cands = _intern_candidates(state, single)
            for earlier, earlier_points, _, earlier_tid in scan:
                if single is not None and len(earlier_points) == 1:
                    conflicting = earlier_points[0] in single_cands
                else:
                    conflicting = False
                    for p in points:
                        cands = candidate_map.get(p)
                        if cands is None:
                            cands = _intern_candidates(state, p)
                        for q in earlier_points:
                            if q in cands:
                                conflicting = True
                                break
                        if conflicting:
                            break
                if not conflicting:
                    continue
                preds.append(earlier)
                if earlier_tid == tid:
                    continue  # program order already forbids reordering
                if clock is None or clocks[earlier] is None:
                    raise ReproError(
                        f"prediction requires stamped events; event {index} "
                        f"({event.label()}) or {earlier} has no clock")
                if not clocks[earlier].leq(clock):
                    continue  # unordered: a *witnessed* race
                self._pending.setdefault(
                    action.obj, []).append((earlier, index))
                self._bump("predict_candidates")
            prior.append((index, points, pid, tid))
            return
        cache = self._conflict_cache
        conflicts = rep.conflicts
        for earlier, earlier_points, earlier_pid, earlier_tid in scan:
            key = ((earlier_pid, pid)
                   if pid is not None and earlier_pid is not None else None)
            conflicting = cache.get(key) if key is not None else None
            if conflicting is None:
                if single is not None and len(earlier_points) == 1:
                    conflicting = conflicts(earlier_points[0], single)
                else:
                    conflicting = any(conflicts(p, q)
                                      for p in earlier_points for q in points)
                if key is not None:
                    cache[key] = conflicting
            if not conflicting:
                continue
            preds.append(earlier)
            if earlier_tid == tid:
                continue  # program order already forbids reordering
            if clock is None or clocks[earlier] is None:
                raise ReproError(
                    f"prediction requires stamped events; event {index} "
                    f"({event.label()}) or {earlier} has no clock")
            if not clocks[earlier].leq(clock):
                continue  # unordered: this pair is a *witnessed* race
            self._pending.setdefault(action.obj, []).append((earlier, index))
            self._bump("predict_candidates")
        prior.append((index, points, pid, tid))

    # -- resolving candidates ------------------------------------------

    def pending_loads(self) -> List[Tuple[Any, int]]:
        """``(object, queued candidate count)`` in first-touch order."""
        return [(obj, len(pairs)) for obj, pairs in self._pending.items()]

    def process_objects(self, objs: Sequence[Any],
                        ) -> Tuple[List[PredictedRace], Dict[str, int]]:
        """Resolve the queued candidates of ``objs``.

        Returns ``(predictions sorted by pair, counter deltas)`` without
        touching shared mutable state — safe to call concurrently for
        disjoint object sets (the sharded fan-out does).
        """
        out: List[PredictedRace] = []
        counts: Dict[str, int] = {}
        for obj in objs:
            for pair in self._pending.get(obj, ()):
                prediction = self._try_candidate(obj, pair, counts)
                if prediction is not None:
                    out.append(prediction)
        out.sort(key=lambda prediction: prediction.pair)
        return out, counts

    def flush(self) -> List[PredictedRace]:
        """Resolve every queued candidate; returns the new predictions.

        ``predicted`` accumulates across flushes and stays sorted by
        ``pair``, so incremental (maintenance-window) flushing ends in
        exactly the same list as one flush at end of trace.
        """
        fresh, counts = self.process_objects(list(self._pending))
        self._pending.clear()
        self.absorb_counts(counts)
        if fresh:
            self.predicted.extend(fresh)
            self.predicted.sort(key=lambda prediction: prediction.pair)
        return fresh

    def absorb_counts(self, counts: Dict[str, int]) -> None:
        """Merge a :meth:`process_objects` counter delta (obs included)."""
        for name, amount in counts.items():
            self.counts[name] = self.counts.get(name, 0) + amount
            if self._obs is not None:
                self._obs.add(name, amount)

    def _bump(self, name: str) -> None:
        self.counts[name] = self.counts.get(name, 0) + 1
        if self._obs is not None:
            self._obs.add(name)

    # -- one candidate through the pipeline ----------------------------

    def _try_candidate(self, obj: Any, pair: Tuple[int, int],
                       counts: Dict[str, int]) -> Optional[PredictedRace]:
        first, second = pair
        preds = self._preds
        # Reachability test first: is ``first`` still in the backward
        # D-closure of ``second`` once the direct conflict edge is
        # removed?  Edges strictly decrease the event index, so any
        # branch that drops below ``first`` can never come back — pruning
        # there bounds the test to the (first, second] span instead of
        # the whole trace, which is what keeps the dominant
        # dropped-ordered case cheap on long traces.
        seen: set = set()
        stack = [p for p in preds[second] if p != first]
        ordered = False
        while stack:
            entry = stack.pop()
            if entry < first or entry in seen:
                continue
            if entry == first:
                ordered = True
                break
            seen.add(entry)
            stack.extend(preds[entry])
        if ordered:
            # Ordered through some other conflict/sync chain: every
            # correct reordering keeps them apart.
            counts["predict_dropped_ordered"] = (
                counts.get("predict_dropped_ordered", 0) + 1)
            return None
        # Survivors pay for the full closures (the witness support).
        down_second: set = set()
        stack = [p for p in preds[second] if p != first]
        while stack:
            entry = stack.pop()
            if entry not in down_second:
                down_second.add(entry)
                stack.extend(preds[entry])
        down_first: set = set()
        stack = list(preds[first])
        while stack:
            entry = stack.pop()
            if entry not in down_first:
                down_first.add(entry)
                stack.extend(preds[entry])
        support = down_first | down_second
        support.discard(first)
        support.discard(second)
        order = self._schedule(support)
        if order is None:
            # Mutual exclusion (or an unmatched lock hand-off) pins the
            # observed order: the closures demand two overlapping
            # critical sections on one lock.
            counts["predict_dropped_stuck"] = (
                counts.get("predict_dropped_stuck", 0) + 1)
            return None
        events = self._events
        witness = [_fresh_event(events[entry]) for entry in order]
        witness.append(_fresh_event(events[first]))
        witness.append(_fresh_event(events[second]))
        race = self._validate(obj, first, second, witness)
        if race is None:
            counts["predict_dropped_unvalidated"] = (
                counts.get("predict_dropped_unvalidated", 0) + 1)
            return None
        counts["predict_validated"] = counts.get("predict_validated", 0) + 1
        return PredictedRace(race=race, pair=pair, witness=tuple(witness))

    def _schedule(self, support: set) -> Optional[List[int]]:
        """Lock-aware greedy linearization of ``support``; None if stuck.

        Events schedule in original-index order once their dependence
        predecessors have run.  Mutual exclusion is operational: an
        acquire of a held lock waits for the matching release; an acquire
        whose matching release lies *outside* the support would hold its
        lock for the rest of the witness, so it is deferred until nothing
        else can run.  Failure to place every event means the candidate's
        closures require overlapping critical sections — no correct
        reordering exists, and the caller drops the candidate.
        """
        if not support:
            return []
        preds = self._preds
        events = self._events
        remaining: Dict[int, int] = {}
        succs: Dict[int, List[int]] = {}
        for entry in support:
            need = 0
            for pred in preds[entry]:
                if pred in support:
                    need += 1
                    succs.setdefault(pred, []).append(entry)
            remaining[entry] = need
        ready = [entry for entry in support if remaining[entry] == 0]
        heapq.heapify(ready)
        deferred: List[int] = []   # acquires whose release is outside
        waiting: Dict[Any, List[int]] = {}
        held: Dict[Any, Any] = {}
        order: List[int] = []
        match_release = self._match_release

        def place(entry: int) -> None:
            order.append(entry)
            for succ in succs.get(entry, ()):
                remaining[succ] -= 1
                if remaining[succ] == 0:
                    heapq.heappush(ready, succ)

        while True:
            progressed = False
            while ready:
                entry = heapq.heappop(ready)
                event = events[entry]
                if event.kind is EventKind.ACQUIRE:
                    release = match_release.get(entry)
                    if release is None or release not in support:
                        heapq.heappush(deferred, entry)
                        continue
                    if event.lock in held:
                        waiting.setdefault(event.lock, []).append(entry)
                        continue
                    held[event.lock] = event.tid
                elif event.kind is EventKind.RELEASE:
                    held.pop(event.lock, None)
                    for waiter in waiting.pop(event.lock, ()):
                        heapq.heappush(ready, waiter)
                place(entry)
                progressed = True
            if len(order) == len(support):
                return order
            # Nothing non-terminal can run: commit one deferred acquire
            # (its lock stays held for the rest of the witness).
            placed = False
            stash: List[int] = []
            while deferred:
                entry = heapq.heappop(deferred)
                if events[entry].lock in held:
                    stash.append(entry)
                    continue
                held[events[entry].lock] = events[entry].tid
                place(entry)
                placed = True
                break
            for entry in stash:
                heapq.heappush(deferred, entry)
            if not placed and not progressed:
                return None

    def _validate(self, obj: Any, first: int, second: int,
                  witness: List[Event]) -> Optional[CommutativityRace]:
        """Replay the witness through a standard detector; the race or None.

        The witness is a correct reordering by construction, but the
        standard detector is the authority: a prediction ships only if
        the replay itself reports the candidate pair racing.  Any replay
        error (a protocol-invalid witness would be a bug here, not in the
        trace) conservatively drops the candidate.
        """
        from .detector import CommutativityRaceDetector
        detector = CommutativityRaceDetector(root=self._root)
        # Per-object factoring: other objects' registrations cannot change
        # this object's races, so the replay only needs the candidate's.
        detector.register_object(obj, self._reps[obj])
        try:
            races = detector.run(witness)
        except ReproError:
            return None
        target = self._events[second].action
        target_tid = self._events[second].tid
        first_points = set(self._points[first])
        second_points = set(self._points[second])
        for race in races:
            if (race.obj == obj and race.current == target
                    and race.current_tid == target_tid
                    and race.point in second_points
                    and race.prior_point in first_points):
                return race
        return None


def _fresh_event(event: Event) -> Event:
    """An unstamped copy — the witness replay computes its own clocks."""
    return Event(kind=event.kind, tid=event.tid, action=event.action,
                 peer=event.peer, lock=event.lock, location=event.location)
