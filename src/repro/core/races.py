"""Race reports produced by the analyzers.

Three report flavours mirror the evaluation (Table 2):

* :class:`CommutativityRace` — RD2's verdicts: two method invocations that
  may happen in parallel yet touch conflicting access points.
* :class:`DataRace` — the FastTrack baseline's read/write races on memory
  locations.
* :class:`LocksetWarning` — the Eraser baseline's lockset violations.

Each report knows a *distinct key* — the paper counts both total races and
the number of distinct variables/objects racing ("1784 (26)" means 1784 race
reports on 26 distinct memory locations).  :func:`tally` reproduces that
``total (distinct)`` accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Optional, Sequence, Tuple

from .events import Action, Event, ObjectId
from .vector_clock import VectorClock

__all__ = [
    "RaceReport",
    "CommutativityRace",
    "DataRace",
    "LocksetWarning",
    "RaceTally",
    "RaceGroup",
    "tally",
    "group_races",
]


@dataclass(frozen=True)
class RaceReport:
    """Common shape of all race verdicts."""

    def distinct_key(self) -> Hashable:
        raise NotImplementedError


@dataclass(frozen=True)
class CommutativityRace(RaceReport):
    """Two unordered, non-commuting invocations (Definition 4.3).

    ``current`` is the action whose processing flagged the race, stamped
    ``current_clock``; ``point`` / ``prior_point`` are the conflicting access
    points; ``prior_clock`` is the accumulated clock of all earlier touches
    of ``prior_point`` (so ``prior_clock ⋢ current_clock`` witnesses some
    earlier touching event that may happen in parallel with ``current``).
    ``prior`` carries the specific earlier action when the analyzer retains
    enough history to name it (the online detector keeps only clocks, the
    oracle names both actions).
    """

    obj: ObjectId
    current: Action
    current_clock: VectorClock
    point: Any
    prior_point: Any
    prior_clock: VectorClock
    current_tid: Any = None
    prior: Optional[Action] = None
    prior_tid: Any = None

    def distinct_key(self) -> Hashable:
        return self.obj

    def __str__(self) -> str:
        who = f"thread {self.current_tid}: " if self.current_tid is not None else ""
        versus = f" vs {self.prior}" if self.prior is not None else ""
        return (f"commutativity race on {self.obj}: {who}{self.current}"
                f"{versus} (points {self.point} ⨯ {self.prior_point}, "
                f"clocks {self.current_clock} ∦ {self.prior_clock})")


@dataclass(frozen=True)
class DataRace(RaceReport):
    """A classic read/write race on a single memory location."""

    location: Hashable
    access: str            # "read" or "write" — the access that raced
    tid: Any
    clock: VectorClock
    conflicting: str       # kind of the earlier conflicting access
    conflicting_tid: Any

    def distinct_key(self) -> Hashable:
        return self.location

    def __str__(self) -> str:
        return (f"data race on {self.location}: {self.access} by thread "
                f"{self.tid} vs earlier {self.conflicting} by thread "
                f"{self.conflicting_tid}")


@dataclass(frozen=True)
class LocksetWarning(RaceReport):
    """An Eraser-style warning: a location's candidate lockset became empty."""

    location: Hashable
    access: str
    tid: Any

    def distinct_key(self) -> Hashable:
        return self.location

    def __str__(self) -> str:
        return (f"lockset violation on {self.location}: unprotected "
                f"{self.access} by thread {self.tid}")


@dataclass(frozen=True)
class RaceTally:
    """Table 2's ``total (distinct)`` pair."""

    total: int
    distinct: int
    distinct_keys: Tuple[Hashable, ...] = ()

    def __str__(self) -> str:
        return f"{self.total} ({self.distinct})"


def tally(reports: Iterable[RaceReport]) -> RaceTally:
    """Count reports and the distinct objects/locations they occur on."""
    total = 0
    keys = []
    seen = set()
    for report in reports:
        total += 1
        key = report.distinct_key()
        if key not in seen:
            seen.add(key)
            keys.append(key)
    return RaceTally(total=total, distinct=len(seen), distinct_keys=tuple(keys))


@dataclass(frozen=True)
class RaceGroup:
    """A redundancy class of race reports.

    The paper observes "most races are highly redundant (meaning that they
    occur on the same memory locations or on the same concurrent hash map
    objects)".  Grouping collapses that redundancy into what a developer
    actually triages: commutativity races group by object plus the pair of
    conflicting access-point *schemas* (e.g. all ``w×w`` put/put races on
    one map are a single group, regardless of key); data races and lockset
    warnings group by location plus access kinds.
    """

    key: Hashable
    count: int
    sample: RaceReport

    def __str__(self) -> str:
        return f"[{self.count}x] {self.sample}"


def _group_key(report: RaceReport) -> Hashable:
    if isinstance(report, CommutativityRace):
        schema_of = lambda point: getattr(point, "schema", type(point))
        schemas = frozenset((schema_of(report.point),
                             schema_of(report.prior_point)))
        return ("commutativity", report.obj, schemas)
    if isinstance(report, DataRace):
        return ("data", report.location,
                frozenset((report.access, report.conflicting)))
    return ("lockset", report.distinct_key())


def group_races(reports: Iterable[RaceReport]) -> Tuple[RaceGroup, ...]:
    """Collapse reports into redundancy groups, largest first.

    Each group keeps its first report as a representative sample; ties in
    size break by first appearance, so output is deterministic.
    """
    order: list = []
    counts: dict = {}
    samples: dict = {}
    for report in reports:
        key = _group_key(report)
        if key not in counts:
            counts[key] = 0
            samples[key] = report
            order.append(key)
        counts[key] += 1
    groups = [RaceGroup(key=key, count=counts[key], sample=samples[key])
              for key in order]
    groups.sort(key=lambda group: -group.count)
    return tuple(groups)
