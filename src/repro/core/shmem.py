"""Shared-memory transports: stamped-action record rings and byte rings.

The sharded pipeline's pickle backend serializes every stamped action —
including its vector clock, an O(threads) mapping — across each process
boundary.  This module is the zero-pickle alternative: phase A writes
events into a ``multiprocessing.shared_memory`` ring buffer per shard in
the fixed-width record format of :mod:`repro.core.events`, and shard
workers decode straight out of the mapped pages with ``struct``/
``memoryview`` — no object graph ever crosses a pipe.

Three layers live here:

:class:`RecordRing`
    A single-producer/single-consumer ring of 40-byte records plus a
    byte side-region for variable-length payloads.  Counters are 64-bit
    monotonic positions in the ring header; head/tail never wrap, slots
    are addressed modulo capacity.  A full ring *blocks the producer*
    (callers retry/poll) — records are never dropped or overwritten.
:class:`StampedEncoder` / :class:`StampedDecoder`
    The stamped-action codec over a ring: a unified value intern table
    (methods, tids, arguments, returns are interned once per ring as
    tagged bytes), per-thread clock *bases* shipped once per
    synchronization window (detected in O(1) by base-dict identity,
    exploiting the copy-on-write stamping of PR 4), and one fixed-width
    ACTION record per event carrying only the 8-byte own-component
    stamp.  The decoder reconstructs value-identical clocks as
    ``_SteppedClock`` views over the shipped base.
:class:`ByteRing`
    An unstructured SPSC byte stream over shared memory with a writer
    close flag — the detection service's shm ingest path carries its
    newline-delimited trace frames through one of these instead of the
    unix socket (the socket stays for handshake and acks).

Memory-ordering note: counters are aligned 8-byte stores/loads via
``struct``.  CPython performs them under the buffer protocol without
tearing, and both supported platforms (x86-64 TSO, AArch64 with the
interpreter's own barriers) observe the side-region/record stores no
later than the published head; the consumer additionally only trusts
data strictly behind the head it read.
"""

from __future__ import annotations

import pickle
import struct
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from multiprocessing import shared_memory

from .events import (FLAG_SPILL, FLAG_WIDE, REC_ACTION, REC_BASE, REC_END,
                     REC_INTERN, REC_OBJECT, RECORD_SIZE, RECORD_STRUCT,
                     decode_value, encode_value)
from .vector_clock import VectorClock, _SteppedClock

__all__ = ["RingFull", "RecordRing", "ByteRing", "StampedEncoder",
           "StampedDecoder", "DEFAULT_RING_SLOTS", "DEFAULT_SIDE_BYTES"]

_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")
_HH = struct.Struct("<HH")
_IQ = struct.Struct("<IQ")

#: Default ring geometry: 8192 slots × 40 B ≈ 320 KiB of records plus a
#: 1 MiB side region per shard — small enough to sit comfortably in
#: /dev/shm for dozens of shards, deep enough that the producer rarely
#: blocks on a healthy consumer.
DEFAULT_RING_SLOTS = 8192
DEFAULT_SIDE_BYTES = 1 << 20

_HEADER = 64
# Header offsets (all u64 except the flag byte).
_OFF_HEAD = 0         # records published (producer)
_OFF_TAIL = 8         # records consumed (consumer)
_OFF_SIDE_HEAD = 16   # side bytes written (producer)
_OFF_SIDE_TAIL = 24   # side bytes consumed (consumer)
_OFF_SLOTS = 32       # record capacity (creator)
_OFF_SIDE_CAP = 40    # side capacity (creator)
_OFF_FLAGS = 48       # bit 0: writer closed (ByteRing)


class RingFull(Exception):
    """A record (plus its side bytes) does not fit right now — retry."""


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker ownership.

    Only the creator may unlink; without this, every attaching process
    registers the segment with its own ``resource_tracker`` and the
    first to exit destroys (or double-frees) memory the others still
    map.  Python 3.13 grew ``track=False`` for exactly this; on older
    interpreters we unregister by hand.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Pre-3.13: attaching registers with the resource tracker exactly like
    # creating does.  Under fork the tracker process is *shared* with the
    # creator, so an attach-side ``unregister`` would clobber the creator's
    # registration; suppressing registration locally is the only edit that
    # stays confined to this process.
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class RecordRing:
    """SPSC ring of fixed-width records + ordered varlen side bytes.

    Exactly one producer and one consumer.  The producer's writes become
    visible only at :meth:`publish`; the consumer acknowledges space
    back after every :meth:`get`.  Side bytes belong to records
    implicitly, in order: record N's ``side`` field says how many bytes
    of the side stream it owns, so the consumer never needs an offset.
    """

    def __init__(self, shm: shared_memory.SharedMemory, slots: int,
                 side_bytes: int, owner: bool):
        self._shm = shm
        self._owner = owner
        self.buf = shm.buf
        self.slots = slots
        self.side_capacity = side_bytes
        self._rec0 = _HEADER
        self._side0 = _HEADER + slots * RECORD_SIZE
        # Consumer ack batching: shared tail counters are written through
        # every ``ack_interval`` records (and whenever the ring reads
        # empty, so a blocked producer always unblocks).  1 = write-through
        # on every get, the fully conservative default.
        self.ack_interval = 1
        self._acks_pending = 0
        # Producer-local positions (authoritative: single producer).
        self._head = _U64.unpack_from(self.buf, _OFF_HEAD)[0]
        self._side_head = _U64.unpack_from(self.buf, _OFF_SIDE_HEAD)[0]
        self._tail_cache = _U64.unpack_from(self.buf, _OFF_TAIL)[0]
        self._side_tail_cache = _U64.unpack_from(self.buf, _OFF_SIDE_TAIL)[0]
        # Consumer-local positions.
        self._tail = self._tail_cache
        self._side_tail = self._side_tail_cache
        self._head_cache = self._head

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, slots: int = DEFAULT_RING_SLOTS,
               side_bytes: int = DEFAULT_SIDE_BYTES) -> "RecordRing":
        if slots < 1 or side_bytes < 1:
            raise ValueError(f"ring needs >= 1 slot and >= 1 side byte, "
                             f"got {slots}/{side_bytes}")
        size = _HEADER + slots * RECORD_SIZE + side_bytes
        shm = shared_memory.SharedMemory(create=True, size=size)
        shm.buf[:_HEADER] = bytes(_HEADER)
        _U64.pack_into(shm.buf, _OFF_SLOTS, slots)
        _U64.pack_into(shm.buf, _OFF_SIDE_CAP, side_bytes)
        return cls(shm, slots, side_bytes, owner=True)

    @classmethod
    def attach(cls, name: str) -> "RecordRing":
        shm = _attach_untracked(name)
        slots = _U64.unpack_from(shm.buf, _OFF_SLOTS)[0]
        side = _U64.unpack_from(shm.buf, _OFF_SIDE_CAP)[0]
        return cls(shm, slots, side, owner=False)

    # -- producer ----------------------------------------------------------

    def try_put(self, kind: int, counts: int, flags: int, tid: int,
                index: int, stamp: int, method: int, v0: int, v1: int,
                side: bytes = b"") -> bool:
        """Stage one record; False (nothing written) when it cannot fit."""
        if self._head - self._tail_cache >= self.slots:
            self._tail_cache = _U64.unpack_from(self.buf, _OFF_TAIL)[0]
            if self._head - self._tail_cache >= self.slots:
                return False
        need = len(side)
        if need:
            if self._side_head + need - self._side_tail_cache \
                    > self.side_capacity:
                self._side_tail_cache = _U64.unpack_from(
                    self.buf, _OFF_SIDE_TAIL)[0]
                if self._side_head + need - self._side_tail_cache \
                        > self.side_capacity:
                    return False
            at = self._side0 + self._side_head % self.side_capacity
            first = min(need, self._side0 + self.side_capacity - at)
            self.buf[at:at + first] = side[:first]
            if first < need:
                self.buf[self._side0:self._side0 + need - first] = side[first:]
            self._side_head += need
        RECORD_STRUCT.pack_into(
            self.buf, self._rec0 + (self._head % self.slots) * RECORD_SIZE,
            kind, counts, flags, tid, index, stamp, method, v0, v1, need)
        self._head += 1
        return True

    def publish(self) -> None:
        """Make every staged record visible to the consumer."""
        _U64.pack_into(self.buf, _OFF_SIDE_HEAD, self._side_head)
        _U64.pack_into(self.buf, _OFF_HEAD, self._head)

    def occupancy_bytes(self) -> int:
        """Producer-side view of bytes currently queued in the ring."""
        tail = _U64.unpack_from(self.buf, _OFF_TAIL)[0]
        side_tail = _U64.unpack_from(self.buf, _OFF_SIDE_TAIL)[0]
        return ((self._head - tail) * RECORD_SIZE
                + (self._side_head - side_tail))

    def capacity_bytes(self) -> int:
        return self.slots * RECORD_SIZE + self.side_capacity

    # -- consumer ----------------------------------------------------------

    def get(self) -> Optional[Tuple[Any, ...]]:
        """One record ``(kind..v1, side_bytes)``, or None when empty."""
        if self._tail >= self._head_cache:
            self._head_cache = _U64.unpack_from(self.buf, _OFF_HEAD)[0]
            if self._tail >= self._head_cache:
                if self._acks_pending:
                    self._flush_acks()
                return None
        rec = RECORD_STRUCT.unpack_from(
            self.buf, self._rec0 + (self._tail % self.slots) * RECORD_SIZE)
        side_len = rec[9]
        side = b""
        if side_len:
            at = self._side0 + self._side_tail % self.side_capacity
            first = min(side_len, self._side0 + self.side_capacity - at)
            side = bytes(self.buf[at:at + first])
            if first < side_len:
                side += bytes(self.buf[self._side0:
                                       self._side0 + side_len - first])
            self._side_tail += side_len
        self._tail += 1
        # Acknowledge space only after the bytes are copied out.
        self._acks_pending += 1
        if self._acks_pending >= self.ack_interval:
            self._flush_acks()
        return rec[:9] + (side,)

    def _flush_acks(self) -> None:
        _U64.pack_into(self.buf, _OFF_SIDE_TAIL, self._side_tail)
        _U64.pack_into(self.buf, _OFF_TAIL, self._tail)
        self._acks_pending = 0

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:
                pass


class ByteRing:
    """SPSC byte stream over shared memory, with a writer close flag.

    The detection service's shm ingest transport: the client creates one,
    streams its newline-delimited trace into it (blocking while full —
    the same backpressure contract as the socket), sets the close flag,
    and the server consumes until EOF (closed *and* drained).
    """

    def __init__(self, shm: shared_memory.SharedMemory, capacity: int,
                 owner: bool):
        self._shm = shm
        self._owner = owner
        self.buf = shm.buf
        self.capacity = capacity
        self._data0 = _HEADER
        self._head = _U64.unpack_from(self.buf, _OFF_HEAD)[0]
        self._tail = _U64.unpack_from(self.buf, _OFF_TAIL)[0]

    @property
    def name(self) -> str:
        return self._shm.name

    @classmethod
    def create(cls, capacity: int = 1 << 20) -> "ByteRing":
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        shm = shared_memory.SharedMemory(create=True,
                                         size=_HEADER + capacity)
        shm.buf[:_HEADER] = bytes(_HEADER)
        _U64.pack_into(shm.buf, _OFF_SLOTS, capacity)
        return cls(shm, capacity, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ByteRing":
        shm = _attach_untracked(name)
        capacity = _U64.unpack_from(shm.buf, _OFF_SLOTS)[0]
        return cls(shm, capacity, owner=False)

    # -- writer ------------------------------------------------------------

    def try_write(self, data) -> int:
        """Write as much of ``data`` as fits; returns bytes consumed."""
        tail = _U64.unpack_from(self.buf, _OFF_TAIL)[0]
        free = self.capacity - (self._head - tail)
        if free <= 0:
            return 0
        chunk = data[:free] if len(data) > free else data
        need = len(chunk)
        at = self._data0 + self._head % self.capacity
        first = min(need, self._data0 + self.capacity - at)
        self.buf[at:at + first] = chunk[:first]
        if first < need:
            self.buf[self._data0:self._data0 + need - first] = chunk[first:]
        self._head += need
        _U64.pack_into(self.buf, _OFF_HEAD, self._head)
        return need

    def write_all(self, data: bytes, timeout: Optional[float] = None,
                  poll: float = 0.001) -> None:
        """Blocking write of the whole buffer (the backpressure contract)."""
        view = memoryview(data)
        deadline = (time.monotonic() + timeout) if timeout is not None \
            else None
        while view.nbytes:
            wrote = self.try_write(view)
            if wrote:
                view = view[wrote:]
                continue
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"byte ring full for {timeout:g}s (stalled consumer)")
            time.sleep(poll)

    def close_write(self) -> None:
        self.buf[_OFF_FLAGS] = 1

    # -- reader ------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return bool(self.buf[_OFF_FLAGS])

    @property
    def eof(self) -> bool:
        if not self.closed:
            return False
        head = _U64.unpack_from(self.buf, _OFF_HEAD)[0]
        return self._tail >= head

    def read(self, max_bytes: int = 1 << 16) -> bytes:
        """Up to ``max_bytes`` of available data (b"" when empty)."""
        head = _U64.unpack_from(self.buf, _OFF_HEAD)[0]
        avail = min(head - self._tail, max_bytes)
        if avail <= 0:
            return b""
        at = self._data0 + self._tail % self.capacity
        first = min(avail, self._data0 + self.capacity - at)
        out = bytes(self.buf[at:at + first])
        if first < avail:
            out += bytes(self.buf[self._data0:self._data0 + avail - first])
        self._tail += avail
        _U64.pack_into(self.buf, _OFF_TAIL, self._tail)
        return out

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass

    def unlink(self) -> None:
        if self._owner:
            try:
                self._shm.unlink()
            except OSError:
                pass


# -- the stamped-action codec -------------------------------------------------

def _typed_key(value: Any):
    """Intern key that separates equal-but-distinct values (1 vs True vs
    1.0, recursively inside tuples) — reports must reproduce exact types."""
    cls = value.__class__
    if cls is tuple:
        return (tuple, tuple(_typed_key(item) for item in value))
    return (cls, value)


class StampedEncoder:
    """Producer half: packed stamped actions → ring records.

    Every public method either fully writes its records or raises
    :class:`RingFull` having registered nothing, so a blocked encode is
    safely retried after the consumer drains (already-interned values and
    already-shipped bases are skipped on retry).  Call
    :meth:`~RecordRing.publish` on the ring (or :meth:`publish` here)
    to make staged records visible — and always publish before waiting
    on a full ring, or the consumer can never drain it.
    """

    def __init__(self, ring: RecordRing):
        self._ring = ring
        self._ids: Dict[Any, int] = {}
        self._next_id = 0
        self._bases: Dict[int, Any] = {}       # tid value id -> base dict
        # Packed REC_BASE payloads keyed by id(base).  Copy-on-write
        # stamping shares base dicts across threads and windows, and the
        # payload's actions keep every base alive for the encoder's whole
        # lifetime, so identity is a sound cache key here.
        self._base_blobs: Dict[int, bytes] = {}
        self.bytes_written = 0

    def publish(self) -> None:
        self._ring.publish()

    def _intern(self, value: Any) -> int:
        try:
            key = _typed_key(value)
            vid = self._ids.get(key)
        except TypeError:           # unhashable: encode fresh every time
            key = None
            vid = None
        if vid is not None:
            return vid
        blob = encode_value(value)
        vid = self._next_id
        if not self._ring.try_put(REC_INTERN, 0, 0, 0, 0, 0, 0, vid, 0, blob):
            raise RingFull
        self.bytes_written += RECORD_SIZE + len(blob)
        if key is not None:
            self._ids[key] = vid
        self._next_id = vid + 1
        return vid

    def begin_object(self, position: int) -> None:
        """Switch the decoder to the shard's object at ``position``."""
        if not self._ring.try_put(REC_OBJECT, 0, 0, 0, 0, 0, 0, position, 0):
            raise RingFull
        self.bytes_written += RECORD_SIZE

    def end(self) -> None:
        if not self._ring.try_put(REC_END, 0, 0, 0, 0, 0, 0, 0, 0):
            raise RingFull
        self.bytes_written += RECORD_SIZE

    def _pack_base(self, base) -> bytes:
        blob = self._base_blobs.get(id(base))
        if blob is None:
            ids = self._ids
            intern = self._intern
            pack = _IQ.pack
            parts = [_U32.pack(len(base))]
            append = parts.append
            for part_tid, part_stamp in base.items():
                if part_tid.__class__ is tuple:
                    part_id = intern(part_tid)
                else:
                    part_id = ids.get((part_tid.__class__, part_tid))
                    if part_id is None:
                        part_id = intern(part_tid)
                append(pack(part_id, part_stamp))
            blob = b"".join(parts)
            self._base_blobs[id(base)] = blob
        return blob

    def encode_action(self, packed: Tuple[Any, ...]) -> None:
        """One stamped action → (intern/base as needed) + one ACTION record."""
        done = self.encode_actions((packed,))
        if not done:
            raise RingFull

    def encode_actions(self, actions, start: int = 0,
                       limit: Optional[int] = None) -> int:
        """Encode ``actions[start:start + limit]``; returns the index of the
        first action *not* encoded (== the stop index when everything fit).

        Stops early — having fully written some prefix and nothing of the
        rest — when the ring fills; already-interned values and
        already-shipped bases are skipped when the caller retries.  This
        is the fan-out hot path: one Python frame per chunk, not per
        action.
        """
        ring = self._ring
        try_put = ring.try_put
        ids = self._ids
        intern = self._intern
        bases = self._bases
        u32_pack = _U32.pack
        stop = len(actions)
        if limit is not None and start + limit < stop:
            stop = start + limit
        at = start
        written = 0
        stepped = _SteppedClock
        try:
            while at < stop:
                index, tid, method, args, returns, clock = actions[at]
                # Fast-path intern lookups use the plain ``(class, value)``
                # key — identical to ``_typed_key`` for every non-tuple, but
                # tuples intern under a recursive key, so they (and
                # unhashables) take the slow path to avoid false hits.
                if tid.__class__ is tuple:
                    tid_id = intern(tid)
                else:
                    tid_id = ids.get((tid.__class__, tid))
                    if tid_id is None:
                        tid_id = intern(tid)
                if clock.__class__ is stepped:
                    base = clock._base
                    stamp = clock._stamp
                else:
                    base = clock._mapping()
                    stamp = base.get(tid, 0)
                if bases.get(tid_id) is not base:
                    # New synchronization window (or first sight of this
                    # thread): ship the base mapping once; subsequent
                    # actions in the window ride on the 8-byte stamp alone.
                    blob = self._pack_base(base)
                    if not try_put(REC_BASE, 0, 0, tid_id, 0, 0, 0, 0, 0,
                                   blob):
                        break
                    written += RECORD_SIZE + len(blob)
                    bases[tid_id] = base
                if method.__class__ is tuple:
                    method_id = intern(method)
                else:
                    method_id = ids.get((method.__class__, method))
                    if method_id is None:
                        method_id = intern(method)
                nargs = len(args)
                nrets = len(returns)
                flags = 0
                side = b""
                if nargs <= 15 and nrets <= 15:
                    counts = (nargs << 4) | nrets
                else:
                    counts = 0
                    flags = FLAG_WIDE
                    side = _HH.pack(nargs, nrets)
                n = nargs + nrets
                v0 = v1 = 0
                if n <= 2:
                    if n:
                        v = args[0] if nargs else returns[0]
                        if v.__class__ is tuple:
                            v0 = intern(v)
                        else:
                            try:
                                v0 = ids.get((v.__class__, v))
                            except TypeError:
                                v0 = None
                            if v0 is None:
                                v0 = intern(v)
                        if n == 2:
                            v = returns[-1] if nrets else args[1]
                            if v.__class__ is tuple:
                                v1 = intern(v)
                            else:
                                try:
                                    v1 = ids.get((v.__class__, v))
                                except TypeError:
                                    v1 = None
                                if v1 is None:
                                    v1 = intern(v)
                else:
                    flags |= FLAG_SPILL
                    vids = [intern(v) for v in args]
                    vids += [intern(v) for v in returns]
                    side += b"".join(u32_pack(i) for i in vids)
                if not try_put(REC_ACTION, counts, flags, tid_id, index,
                               stamp, method_id, v0, v1, side):
                    break
                written += RECORD_SIZE + len(side)
                at += 1
        except RingFull:
            pass
        self.bytes_written += written
        return at


class StampedDecoder:
    """Consumer half: ring records → per-object packed-action streams.

    :meth:`streams` yields ``(object_position, actions)`` in ring order;
    each ``actions`` iterator must be drained before advancing (the
    replay loop naturally does).  Blocks (poll + short sleep) while the
    ring is empty; a REC_END record terminates the stream.
    """

    #: Idle-wait ceiling: an empty ring means the producer is busy encoding
    #: (or feeding another shard), so polls back off exponentially to this
    #: bound — on a saturated host, 5000 wakeups/s per idle shard worker
    #: would steal the CPU from the very producer being waited on.
    MAX_POLL = 0.004

    def __init__(self, ring: RecordRing, poll: float = 0.0002):
        self._ring = ring
        self._poll = poll
        ring.ack_interval = 64
        self._values: List[Any] = []
        self._bases: Dict[int, Dict[Any, int]] = {}
        self._boundary: Optional[Tuple[Any, ...]] = None

    def _next(self) -> Tuple[Any, ...]:
        get = self._ring.get
        delay = self._poll
        limit = self.MAX_POLL
        while True:
            rec = get()
            if rec is not None:
                return rec
            time.sleep(delay)
            if delay < limit:
                delay += delay

    def _absorb(self, rec: Tuple[Any, ...]) -> bool:
        """Consume a metadata record; False if ``rec`` is not metadata."""
        kind = rec[0]
        if kind == REC_INTERN:
            assert rec[7] == len(self._values)
            self._values.append(decode_value(rec[9]))
            return True
        if kind == REC_BASE:
            side = rec[9]
            count = _U32.unpack_from(side, 0)[0]
            base: Dict[Any, int] = {}
            at = 4
            values = self._values
            for _ in range(count):
                part_tid_id, part_stamp = _IQ.unpack_from(side, at)
                at += 12
                base[values[part_tid_id]] = part_stamp
            self._bases[rec[3]] = base
            return True
        return False

    def _actions(self) -> Iterator[Tuple[Any, ...]]:
        values = self._values
        bases = self._bases
        get = self._ring.get
        stepped = _SteppedClock
        stepped_new = stepped.__new__
        action_kind = REC_ACTION
        while True:
            rec = get()
            if rec is None:
                rec = self._next()
            kind = rec[0]
            if kind != action_kind:
                if self._absorb(rec):
                    continue
                self._boundary = rec
                return
            _, counts, flags, tid_id, index, stamp, method_id, v0, v1, \
                side = rec
            at = 0
            if flags & FLAG_WIDE:
                nargs, nrets = _HH.unpack_from(side, 0)
                at = 4
            else:
                nargs = counts >> 4
                nrets = counts & 0xF
            n = nargs + nrets
            if flags & FLAG_SPILL:
                ids = _U32.iter_unpack(side[at:at + 4 * n])
                resolved = [values[i] for (i,) in ids]
            elif n == 2:
                resolved = [values[v0], values[v1]]
            elif n == 1:
                resolved = [values[v0]]
            else:
                resolved = []
            tid = values[tid_id]
            base = bases[tid_id]
            if stamp:
                clock = stepped_new(stepped)
                clock._base = base
                clock._tid = tid
                clock._stamp = stamp
                clock._entries = None
                clock._hash = None
            else:
                # A clock with no own component (cannot arise from Fig. 3
                # stamping, but the codec stays total): the base *is* the
                # mapping.
                clock = VectorClock._trusted(dict(base))
            yield (index, tid, values[method_id], tuple(resolved[:nargs]),
                   tuple(resolved[nargs:]), clock)

    def streams(self) -> Iterator[Tuple[int, Iterator[Tuple[Any, ...]]]]:
        rec = self._next()
        while True:
            if self._absorb(rec):
                rec = self._next()
                continue
            kind = rec[0]
            if kind == REC_END:
                return
            if kind != REC_OBJECT:
                raise ValueError(f"unexpected record kind {kind} between "
                                 f"object sections")
            self._boundary = None
            inner = self._actions()
            yield rec[7], inner
            for _ in inner:     # guarantee the section is fully consumed
                pass
            rec = self._boundary


def feed_shard(encoder: StampedEncoder, objects, chunk: int = 128
               ) -> Iterator[bool]:
    """Generator driving one shard's encode: yields after every ``chunk``
    actions (True = progressed) or whenever the ring is full (False —
    give the consumer, or another shard, the CPU).  ``objects`` is the
    payload's object list; StopIteration means the END record (and a
    final publish) went out.
    """
    for position, entry in enumerate(objects):
        while True:
            try:
                encoder.begin_object(position)
                break
            except RingFull:
                encoder.publish()
                yield False
        packed_actions = entry[4]
        at = 0
        total = len(packed_actions)
        while at < total:
            to = encoder.encode_actions(packed_actions, at, chunk)
            encoder.publish()
            if to == at:
                yield False         # ring full: let the consumer drain
            else:
                at = to
                if at < total:
                    yield True
    while True:
        try:
            encoder.end()
            break
        except RingFull:
            encoder.publish()
            yield False
    encoder.publish()


def dumps_payload(payload: Any) -> bytes:
    """The one pickle a shm worker still costs: its init payload (knobs,
    registrations, plans, prune snapshots) — shipped once per worker."""
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
