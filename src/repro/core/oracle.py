"""Offline brute-force oracle for commutativity races.

Definition 4.3 is declarative: events ``ei, ej`` race iff ``ei ‖ ej`` and
``ϕ(a, b)`` does not hold for their actions.  The oracle implements the
definition literally — enumerate all unordered action pairs of a recorded
trace and evaluate the specification — in ``O(n²)`` time.

It exists to *validate* the online detector: Theorem 5.1 states Algorithm 1
reports a race iff the trace contains one, so on any trace the detector and
the oracle must agree on race existence (and, with our detector's complete
reporting, on the set of racing pairs).  The hypothesis test-suite checks
exactly this agreement on randomized traces.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .events import Action, Event, ObjectId
from .races import CommutativityRace
from .trace import Trace

__all__ = ["RacingPair", "CommutativityOracle"]

Commutes = Callable[[Action, Action], bool]
RacingPair = Tuple[Event, Event]


class CommutativityOracle:
    """Quadratic reference implementation of Definition 4.3."""

    def __init__(self) -> None:
        self._commutes: Dict[ObjectId, Commutes] = {}

    def register_object(self, obj: ObjectId, commutes: Commutes) -> None:
        self._commutes[obj] = commutes

    def racing_pairs(self, trace: Trace) -> List[RacingPair]:
        """All event pairs participating in a commutativity race."""
        if not trace.stamped:
            trace.stamp()
        pairs: List[RacingPair] = []
        for obj, commutes in self._commutes.items():
            for e1, e2 in trace.unordered_action_pairs(obj):
                if not commutes(e1.action, e2.action):
                    pairs.append((e1, e2))
        pairs.sort(key=lambda pair: (pair[0].index, pair[1].index))
        return pairs

    def has_race(self, trace: Trace) -> bool:
        """Whether the trace contains any commutativity race."""
        for _ in self.racing_pairs(trace):
            return True
        return False

    def reports(self, trace: Trace) -> List[CommutativityRace]:
        """Racing pairs as full :class:`CommutativityRace` reports."""
        out = []
        for e1, e2 in self.racing_pairs(trace):
            out.append(CommutativityRace(
                obj=e2.action.obj,
                current=e2.action,
                current_clock=e2.clock,
                current_tid=e2.tid,
                point=e2.action,
                prior_point=e1.action,
                prior_clock=e1.clock,
                prior=e1.action,
                prior_tid=e1.tid,
            ))
        return out
