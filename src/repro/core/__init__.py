"""Core of the reproduction: execution model, vector clocks, access points
and the commutativity race detector (Sections 3–5 of the paper)."""

from .access_points import (AccessPoint, AccessPointRepresentation,
                            NaiveRepresentation, SchemaRepresentation,
                            representations_equivalent)
from .checkpoint import CheckpointConfig, load_checkpoint, save_checkpoint
from .detector import CommutativityRaceDetector, DetectorStats, Strategy
from .direct import DirectDetector
from .errors import (CheckpointError, FragmentError, MonitorError,
                     ParseError, ReproError, SchedulerError,
                     SpecificationError, TranslationError)
from .faults import FaultLog, FaultRecord
from .events import (NIL, Action, Event, EventKind, Nil, ObjectId,
                     acquire_event, action_event, begin_event, commit_event,
                     fork_event, join_event, read_event, release_event,
                     write_event)
from .hb import HappensBeforeTracker
from .oracle import CommutativityOracle, RacingPair
from .parallel import ShardedDetector, partition_by_load
from .graph import (concurrency_matrix, critical_path,
                    happens_before_graph, parallelism_profile,
                    racing_context)
from .races import (CommutativityRace, DataRace, LocksetWarning, RaceGroup,
                    RaceReport, RaceTally, group_races, tally)
from .serialize import (TailReader, dump_trace, dumps_trace, follow_trace,
                        load_trace, loads_trace)
from .stream import FollowStatus, StreamAnalyzer, follow_analyze
from .supervise import ShardSupervisor, SupervisorConfig
from .trace import Trace, TraceBuilder
from .vector_clock import BOTTOM, MutableVectorClock, Tid, VectorClock

__all__ = [
    "AccessPoint", "AccessPointRepresentation", "NaiveRepresentation",
    "SchemaRepresentation", "representations_equivalent",
    "CommutativityRaceDetector", "DetectorStats", "Strategy",
    "DirectDetector",
    "CheckpointError", "FragmentError", "MonitorError", "ParseError",
    "ReproError", "SchedulerError", "SpecificationError", "TranslationError",
    "CheckpointConfig", "load_checkpoint", "save_checkpoint",
    "FaultLog", "FaultRecord",
    "ShardSupervisor", "SupervisorConfig",
    "NIL", "Nil", "Action", "Event", "EventKind", "ObjectId",
    "acquire_event", "action_event", "fork_event", "join_event",
    "read_event", "release_event", "write_event",
    "HappensBeforeTracker",
    "CommutativityOracle", "RacingPair",
    "ShardedDetector", "partition_by_load",
    "CommutativityRace", "DataRace", "LocksetWarning", "RaceGroup",
    "RaceReport", "RaceTally", "group_races", "tally",
    "concurrency_matrix", "critical_path", "happens_before_graph",
    "parallelism_profile", "racing_context",
    "dump_trace", "dumps_trace", "load_trace", "loads_trace",
    "TailReader", "follow_trace",
    "FollowStatus", "StreamAnalyzer", "follow_analyze",
    "begin_event", "commit_event",
    "Trace", "TraceBuilder",
    "BOTTOM", "MutableVectorClock", "Tid", "VectorClock",
]
