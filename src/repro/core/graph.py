"""Happens-before graphs: structural views of a trace's partial order.

Built on networkx, these utilities answer questions the detectors do not
need but users debugging a race report do:

* :func:`happens_before_graph` — the event-level DAG (edges from the
  covering relation of ``⪯`` restricted to the recorded events);
* :func:`concurrency_matrix` — which action pairs may happen in parallel;
* :func:`critical_path` — the longest chain of ordered actions: the
  execution's inherent sequential bottleneck (everything off it had slack
  to move);
* :func:`racing_context` — for a racing pair, the causal cones of both
  events: everything either one depends on, which is exactly what fails to
  connect them (inspect it to see which synchronization is missing).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import networkx as nx

from .events import Event, EventKind
from .trace import Trace

__all__ = ["happens_before_graph", "concurrency_matrix", "critical_path",
           "parallelism_profile", "racing_context"]


def _ordered(first: Event, second: Event) -> bool:
    """``first ≺ second`` (strictly)."""
    return (first.clock.leq(second.clock)
            and first.clock != second.clock)


def happens_before_graph(trace: Trace,
                         actions_only: bool = True) -> "nx.DiGraph":
    """The happens-before DAG over the trace's events.

    Nodes are event indices (attributes carry the event); edges form the
    *transitive reduction* of ``≺``, so the drawing is readable.  With
    ``actions_only`` (default) synchronization and memory events are
    elided, matching the granularity of race reports.
    """
    if not trace.stamped:
        trace.stamp()
    events = (trace.actions() if actions_only else list(trace))
    graph = nx.DiGraph()
    for event in events:
        graph.add_node(event.index, event=event, label=event.label())
    for i, first in enumerate(events):
        for second in events[i + 1:]:
            if _ordered(first, second):
                graph.add_edge(first.index, second.index)
    if graph.number_of_edges():
        graph = nx.transitive_reduction(graph)
        # transitive_reduction drops node attributes; restore them.
        for event in events:
            graph.nodes[event.index]["event"] = event
            graph.nodes[event.index]["label"] = event.label()
    return graph


def concurrency_matrix(trace: Trace) -> Dict[Tuple[int, int], bool]:
    """``(i, j) -> may-happen-in-parallel`` over action event indices.

    Symmetric; only pairs with ``i < j`` are materialized.
    """
    if not trace.stamped:
        trace.stamp()
    actions = trace.actions()
    matrix: Dict[Tuple[int, int], bool] = {}
    for i, first in enumerate(actions):
        for second in actions[i + 1:]:
            matrix[(first.index, second.index)] = \
                first.clock.parallel(second.clock)
    return matrix


def critical_path(trace: Trace) -> List[Event]:
    """The longest happens-before chain of action events.

    Its length bounds how much the execution could have been compressed by
    more parallelism; an all-sequential trace's critical path is the whole
    trace.
    """
    graph = happens_before_graph(trace, actions_only=True)
    if graph.number_of_nodes() == 0:
        return []
    path_indices = nx.dag_longest_path(graph)
    return [graph.nodes[index]["event"] for index in path_indices]


def racing_context(trace: Trace, first: Event,
                   second: Event) -> Dict[str, List[Event]]:
    """The causal structure around a racing pair.

    Returns three event lists (all kinds, trace order):

    * ``"common"`` — the shared causal past (both events depend on these);
    * ``"first_only"`` / ``"second_only"`` — each event's private cone.

    For genuinely racing events the private cones are where the missing
    synchronization would have to live; for ordered events one private
    cone contains the other event, making the order visible.
    """
    if not trace.stamped:
        trace.stamp()

    def cone(event: Event) -> List[Event]:
        return [candidate for candidate in trace
                if candidate.index != event.index
                and candidate.clock.leq(event.clock)]

    first_cone = {event.index: event for event in cone(first)}
    second_cone = {event.index: event for event in cone(second)}
    common = [event for index, event in sorted(first_cone.items())
              if index in second_cone]
    first_only = [event for index, event in sorted(first_cone.items())
                  if index not in second_cone]
    second_only = [event for index, event in sorted(second_cone.items())
                   if index not in first_cone]
    return {"common": common, "first_only": first_only,
            "second_only": second_only}


def parallelism_profile(trace: Trace) -> Dict[str, float]:
    """Summary statistics of the trace's concurrency structure.

    * ``actions`` — number of action events;
    * ``critical_path`` — longest ordered chain;
    * ``parallel_fraction`` — share of action pairs that may happen in
      parallel (0 for sequential traces, → 1 for embarrassingly parallel);
    * ``average_width`` — actions / critical path length, a crude measure
      of available parallelism.
    """
    actions = trace.actions()
    pairs = concurrency_matrix(trace)
    total_pairs = len(pairs)
    parallel_pairs = sum(1 for is_parallel in pairs.values() if is_parallel)
    chain = critical_path(trace)
    return {
        "actions": float(len(actions)),
        "critical_path": float(len(chain)),
        "parallel_fraction": (parallel_pairs / total_pairs
                              if total_pairs else 0.0),
        "average_width": (len(actions) / len(chain) if chain else 0.0),
    }
