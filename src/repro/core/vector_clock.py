"""Vector clocks: the lattice ``VC = Tid -> N`` of Section 3.2.

The paper orders vector clocks pointwise, giving a lattice with bottom
``⊥V = λτ.0``, join ``c1 ⊔ c2 = λτ. max(c1 τ, c2 τ)`` and a per-component
increment ``incυ``.  Two events ``e1, e2`` *may happen in parallel*
(``e1 ‖ e2``) iff their clocks are incomparable.

Two implementations are provided:

* :class:`VectorClock` — immutable, hashable, value-semantics.  Used in race
  reports, recorded traces and tests, where aliasing bugs would be costly.
* :class:`MutableVectorClock` — the in-place variant used by the hot paths of
  the detectors (Table 1 bookkeeping touches clocks on every event).

Both store clocks sparsely as ``tid -> timestamp`` with zero entries elided,
so thread identifiers may be arbitrary hashables (ints in practice) and the
clock of a freshly observed thread costs nothing.

Copy-on-write freezing
----------------------

Stamping an event requires an immutable snapshot of the acting thread's
clock (``vc(e) ← T(τ)``), and the Fig. 3 refinement increments the
thread's own component first — so between two synchronization events a
thread's clock changes *only at its own component*.  A naive ``freeze()``
copies the whole sparse dict per event, which makes stamping O(threads)
and dominates Phase A of the sharded pipeline.  :meth:`MutableVectorClock.
freeze` instead keeps one immutable *base* snapshot per synchronization
window and hands out :class:`_SteppedClock` views — the base plus the one
advanced component — in O(1).  Any mutation that touches another
component (join at ``join``/``acq``, ``set_component``) invalidates the
base; the next freeze takes a fresh snapshot.  The base dict is written
only at snapshot creation and never mutated afterwards, so outstanding
views stay sound.
"""

from __future__ import annotations

from collections.abc import Mapping as _Mapping
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Tuple

__all__ = ["Tid", "VectorClock", "MutableVectorClock", "BOTTOM"]

Tid = Hashable
"""Thread identifier.  Any hashable; the schedulers use small integers."""


def _normalized(entries: Iterable[Tuple[Tid, int]]) -> Dict[Tid, int]:
    """Drop zero entries and validate timestamps."""
    out: Dict[Tid, int] = {}
    for tid, stamp in entries:
        if stamp < 0:
            raise ValueError(f"negative timestamp {stamp} for thread {tid!r}")
        if stamp:
            out[tid] = stamp
    return out


class VectorClock:
    """An immutable vector clock (an element of the lattice ``VC``).

    Supports the lattice operations of the paper::

        c1 <= c2      pointwise order (c1 ⊑ c2)
        c1 | c2       join (c1 ⊔ c2)
        c.inc(tid)    incυ(c)
        c.parallel(d) neither c ⊑ d nor d ⊑ c

    Instances compare equal iff they denote the same function ``Tid -> N``.
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Mapping[Tid, int] | Iterable[Tuple[Tid, int]] = ()):
        # collections.abc.Mapping, not typing.Mapping: this constructor is
        # on every detector hot path and typing's __instancecheck__ walk
        # shows up in profiles.
        if isinstance(entries, _Mapping):
            entries = entries.items()
        self._entries: Dict[Tid, int] = _normalized(entries)
        self._hash: int | None = None

    @staticmethod
    def _trusted(entries: Dict[Tid, int]) -> "VectorClock":
        """Wrap an already-normalized dict without copying or validating.

        Internal fast path for lattice operations whose results are
        normalized by construction (joins/increments of normalized
        clocks).  The caller must hand over ownership of ``entries``.
        """
        clock = VectorClock.__new__(VectorClock)
        clock._entries = entries
        clock._hash = None
        return clock

    # -- accessors ---------------------------------------------------------

    def _mapping(self) -> Dict[Tid, int]:
        """The entries dict (hook point for lazily materialized subclasses)."""
        return self._entries

    def __getitem__(self, tid: Tid) -> int:
        """The timestamp recorded for ``tid`` (0 if never observed)."""
        return self._entries.get(tid, 0)

    def threads(self) -> Iterator[Tid]:
        """Iterate over threads with a non-zero timestamp."""
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[Tid, int]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def is_bottom(self) -> bool:
        return not self._entries

    def uncovered_components(self, clocks) -> List[Tid]:
        """Components of ``self`` that at least one of ``clocks`` is below.

        ``[t for (t, s) in self if some clock[t] < s]`` — the components a
        set of observer clocks does *not* dominate.  The detector's epoch
        deflation uses it against the live thread clocks: a point clock
        with at most one uncovered component can be represented as an
        O(1) epoch on that component (every future stamp dominates some
        live clock, so only the uncovered component can still decide a
        comparison).
        """
        return [tid for tid, stamp in self.items()
                if any(clock[tid] < stamp for clock in clocks)]

    # -- lattice operations --------------------------------------------------

    def leq(self, other: "VectorClock | MutableVectorClock") -> bool:
        """Pointwise order ``self ⊑ other`` — the happens-before test."""
        for tid, stamp in self._entries.items():
            if stamp > other[tid]:
                return False
        return True

    __le__ = leq

    def __lt__(self, other: "VectorClock") -> bool:
        return self.leq(other) and not other.leq(self)

    def parallel(self, other: "VectorClock | MutableVectorClock") -> bool:
        """``self ‖ other``: the clocks are incomparable."""
        return not self.leq(other) and not other.leq(self)

    def join(self, other: "VectorClock | MutableVectorClock") -> "VectorClock":
        """The least upper bound ``self ⊔ other``."""
        merged = dict(self._entries)
        for tid, stamp in other.items():
            if stamp > merged.get(tid, 0):
                merged[tid] = stamp
        return VectorClock._trusted(merged)

    __or__ = join

    def inc(self, tid: Tid) -> "VectorClock":
        """``incυ``: a copy with ``tid``'s component advanced by one step."""
        bumped = dict(self._entries)
        bumped[tid] = bumped.get(tid, 0) + 1
        return VectorClock._trusted(bumped)

    # -- conversions ---------------------------------------------------------

    def thaw(self) -> "MutableVectorClock":
        """An independent mutable copy."""
        return MutableVectorClock(self._entries)

    def to_tuple(self, tids: Iterable[Tid]) -> Tuple[int, ...]:
        """Render as a dense tuple over a given thread ordering.

        Convenience for matching the paper's ``⟨3, 0, 1⟩`` presentation.
        """
        return tuple(self[tid] for tid in tids)

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._mapping() == other._mapping()
        if isinstance(other, MutableVectorClock):
            return self._mapping() == other._entries
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._mapping().items()))
        return self._hash

    def __reduce__(self):
        # Compact pickling for the sharded analyzer's IPC: ship only the
        # sparse entries (the cached hash is recomputed on demand).
        # Stepped views materialize and pickle as plain VectorClocks.
        return (VectorClock, (self._mapping(),))

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid!r}: {ts}" for tid, ts in sorted(
            self._mapping().items(), key=lambda kv: repr(kv[0])))
        return f"VectorClock({{{inner}}})"


BOTTOM = VectorClock()
"""The least vector clock ``⊥V`` (every component zero)."""


class _SteppedClock(VectorClock):
    """A lazily materialized ``base`` with one component advanced.

    The copy-on-write ``freeze()`` returns these for event stamps inside a
    synchronization window: the thread's clock equals the window's base
    snapshot everywhere except the thread's own component.  The two reads
    on the detector's hot path — ``clock[tid]`` and ``prior.leq(clock)``
    (as the right-hand side) — never materialize; anything that needs the
    full mapping (join, hash, pickle, repr) builds the dict once and
    caches it in ``_entries``.

    Invariants: ``base`` is never mutated after creation, and
    ``stamp > base.get(tid, 0)`` (the component really did advance), so a
    passed ``stamp ≤ other[tid]`` check implies the base cannot exceed
    ``other`` at ``tid`` either.
    """

    __slots__ = ("_base", "_tid", "_stamp")

    def __init__(self, base: Dict[Tid, int], tid: Tid, stamp: int):
        self._base = base
        self._tid = tid
        self._stamp = stamp
        self._entries = None  # type: ignore[assignment]
        self._hash = None

    def _mapping(self) -> Dict[Tid, int]:
        entries = self._entries
        if entries is None:
            entries = dict(self._base)
            entries[self._tid] = self._stamp
            self._entries = entries
        return entries

    # -- non-materializing fast paths ---------------------------------------

    def __getitem__(self, tid: Tid) -> int:
        entries = self._entries
        if entries is not None:
            return entries.get(tid, 0)
        if tid == self._tid:
            return self._stamp
        return self._base.get(tid, 0)

    def leq(self, other: "VectorClock | MutableVectorClock") -> bool:
        entries = self._entries
        if entries is not None:
            for tid, stamp in entries.items():
                if stamp > other[tid]:
                    return False
            return True
        if self._stamp > other[self._tid]:
            return False
        # stamp > base[tid] (see invariant), so base cannot fail at _tid
        # once the stamp check passed — no need to exclude it below.
        for tid, stamp in self._base.items():
            if stamp > other[tid]:
                return False
        return True

    __le__ = leq

    def __len__(self) -> int:
        entries = self._entries
        if entries is not None:
            return len(entries)
        return len(self._base) + (0 if self._tid in self._base else 1)

    def is_bottom(self) -> bool:
        return False  # stamp >= 1 by construction

    # -- materializing delegates --------------------------------------------

    def threads(self) -> Iterator[Tid]:
        return iter(self._mapping())

    def items(self) -> Iterator[Tuple[Tid, int]]:
        return iter(self._mapping().items())

    def join(self, other: "VectorClock | MutableVectorClock") -> "VectorClock":
        merged = dict(self._mapping())
        for tid, stamp in other.items():
            if stamp > merged.get(tid, 0):
                merged[tid] = stamp
        return VectorClock._trusted(merged)

    __or__ = join

    def inc(self, tid: Tid) -> "VectorClock":
        bumped = dict(self._mapping())
        bumped[tid] = bumped.get(tid, 0) + 1
        return VectorClock._trusted(bumped)

    def thaw(self) -> "MutableVectorClock":
        return MutableVectorClock(self._mapping())


#: Sentinel for "no component diverged from the cached snapshot".  A real
#: thread id could legitimately be None, so the dirty marker cannot be.
_NO_DELTA = object()


class MutableVectorClock:
    """In-place vector clock used by detector hot paths.

    Mirrors :class:`VectorClock`'s read API and adds destructive updates
    (:meth:`join_in_place`, :meth:`inc_in_place`).  Call :meth:`freeze` to
    snapshot the current value as an immutable clock — detectors do this when
    stamping events, so later in-place updates cannot corrupt past stamps.

    ``freeze`` is copy-on-write (see the module docstring): ``_base`` holds
    the last full snapshot's dict, ``_base_clock`` the VectorClock wrapping
    it, and ``_delta_tid`` the single component (if any) that has advanced
    since — the state needed to answer the next freeze in O(1).
    """

    __slots__ = ("_entries", "_base", "_base_clock", "_delta_tid")

    def __init__(self, entries: Mapping[Tid, int] | Iterable[Tuple[Tid, int]] = ()):
        if isinstance(entries, _Mapping):
            entries = entries.items()
        self._entries: Dict[Tid, int] = _normalized(entries)
        self._base: Dict[Tid, int] | None = None
        self._base_clock: VectorClock | None = None
        self._delta_tid = _NO_DELTA

    def __getitem__(self, tid: Tid) -> int:
        return self._entries.get(tid, 0)

    def items(self) -> Iterator[Tuple[Tid, int]]:
        return iter(self._entries.items())

    def threads(self) -> Iterator[Tid]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def leq(self, other: "VectorClock | MutableVectorClock") -> bool:
        for tid, stamp in self._entries.items():
            if stamp > other[tid]:
                return False
        return True

    __le__ = leq

    def parallel(self, other: "VectorClock | MutableVectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def _invalidate(self) -> None:
        self._base = None
        self._base_clock = None
        self._delta_tid = _NO_DELTA

    def join_in_place(self, other: "VectorClock | MutableVectorClock") -> "MutableVectorClock":
        """``self ← self ⊔ other`` (returns self for chaining)."""
        mine = self._entries
        changed = False
        for tid, stamp in other.items():
            if stamp > mine.get(tid, 0):
                mine[tid] = stamp
                changed = True
        # A no-op join (acquiring a lock whose clock is already dominated)
        # leaves the cached snapshot valid — freeze stays O(1).
        if changed and self._base is not None:
            self._invalidate()
        return self

    def inc_in_place(self, tid: Tid) -> "MutableVectorClock":
        """``self ← inc_tid(self)`` (returns self for chaining)."""
        entries = self._entries
        entries[tid] = entries.get(tid, 0) + 1
        if self._base is not None:
            delta = self._delta_tid
            if delta is _NO_DELTA:
                self._delta_tid = tid
            elif delta != tid:
                # Two distinct components diverged: the stepped-view trick
                # no longer applies (never happens under Table 1, where a
                # thread only ever increments its own component).
                self._invalidate()
        return self

    def set_component(self, tid: Tid, stamp: int) -> None:
        """Overwrite one component (used by FastTrack's read epochs)."""
        if stamp < 0:
            raise ValueError(f"negative timestamp {stamp} for thread {tid!r}")
        if stamp:
            self._entries[tid] = stamp
        else:
            self._entries.pop(tid, None)
        if self._base is not None:
            self._invalidate()

    def freeze(self) -> VectorClock:
        """An immutable snapshot of the current value — copy-on-write.

        The first freeze after a cross-component mutation copies the dict
        once and caches it; while only this clock's own component advances
        (the Fig. 3 stamping pattern), subsequent freezes return the cached
        snapshot itself or an O(1) :class:`_SteppedClock` view of it.
        """
        base = self._base
        if base is None:
            base = dict(self._entries)
            self._base = base
            clock = VectorClock._trusted(base)
            self._base_clock = clock
            self._delta_tid = _NO_DELTA
            return clock
        delta = self._delta_tid
        if delta is _NO_DELTA:
            return self._base_clock
        # Inline _SteppedClock construction (bypassing __init__): this is
        # the once-per-event stamp of Phase A, where even one extra Python
        # frame is measurable.
        stepped = _SteppedClock.__new__(_SteppedClock)
        stepped._base = base
        stepped._tid = delta
        stepped._stamp = self._entries[delta]
        stepped._entries = None
        stepped._hash = None
        return stepped

    def stamp_next(self, tid: Tid) -> VectorClock:
        """Fused ``inc_in_place(tid)`` + ``freeze()`` — the per-event stamp.

        Phase A runs this once per action (the Fig. 3 refinement: advance
        the thread's own component, then snapshot), so the pair is
        flattened into one call with one dict probe and no intermediate
        method dispatch.  Semantically identical to calling the two
        operations in sequence.
        """
        entries = self._entries
        stamp = entries.get(tid, 0) + 1
        entries[tid] = stamp
        base = self._base
        if base is not None:
            delta = self._delta_tid
            if delta is _NO_DELTA:
                self._delta_tid = tid
            elif delta != tid:
                base = None  # second component diverged: snapshot afresh
        if base is None:
            base = dict(entries)
            self._base = base
            clock = VectorClock._trusted(base)
            self._base_clock = clock
            self._delta_tid = _NO_DELTA
            return clock
        stepped = _SteppedClock.__new__(_SteppedClock)
        stepped._base = base
        stepped._tid = tid
        stepped._stamp = stamp
        stepped._entries = None
        stepped._hash = None
        return stepped

    def freeze_copy(self) -> VectorClock:
        """Always-copying freeze (the pre-CoW behavior).

        Kept for the hot-path benchmark's seed baseline and for callers
        that explicitly want an independent plain snapshot.
        """
        return VectorClock._trusted(dict(self._entries))

    def copy(self) -> "MutableVectorClock":
        dup = MutableVectorClock.__new__(MutableVectorClock)
        dup._entries = dict(self._entries)
        dup._base = None
        dup._base_clock = None
        dup._delta_tid = _NO_DELTA
        return dup

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (VectorClock, MutableVectorClock)):
            return dict(self.items()) == dict(other.items())
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable: not hashable

    def __reduce__(self):
        return (MutableVectorClock, (self._entries,))

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid!r}: {ts}" for tid, ts in sorted(
            self._entries.items(), key=lambda kv: repr(kv[0])))
        return f"MutableVectorClock({{{inner}}})"
