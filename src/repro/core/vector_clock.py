"""Vector clocks: the lattice ``VC = Tid -> N`` of Section 3.2.

The paper orders vector clocks pointwise, giving a lattice with bottom
``⊥V = λτ.0``, join ``c1 ⊔ c2 = λτ. max(c1 τ, c2 τ)`` and a per-component
increment ``incυ``.  Two events ``e1, e2`` *may happen in parallel*
(``e1 ‖ e2``) iff their clocks are incomparable.

Two implementations are provided:

* :class:`VectorClock` — immutable, hashable, value-semantics.  Used in race
  reports, recorded traces and tests, where aliasing bugs would be costly.
* :class:`MutableVectorClock` — the in-place variant used by the hot paths of
  the detectors (Table 1 bookkeeping touches clocks on every event).

Both store clocks sparsely as ``tid -> timestamp`` with zero entries elided,
so thread identifiers may be arbitrary hashables (ints in practice) and the
clock of a freshly observed thread costs nothing.
"""

from __future__ import annotations

from collections.abc import Mapping as _Mapping
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Tuple

__all__ = ["Tid", "VectorClock", "MutableVectorClock", "BOTTOM"]

Tid = Hashable
"""Thread identifier.  Any hashable; the schedulers use small integers."""


def _normalized(entries: Iterable[Tuple[Tid, int]]) -> Dict[Tid, int]:
    """Drop zero entries and validate timestamps."""
    out: Dict[Tid, int] = {}
    for tid, stamp in entries:
        if stamp < 0:
            raise ValueError(f"negative timestamp {stamp} for thread {tid!r}")
        if stamp:
            out[tid] = stamp
    return out


class VectorClock:
    """An immutable vector clock (an element of the lattice ``VC``).

    Supports the lattice operations of the paper::

        c1 <= c2      pointwise order (c1 ⊑ c2)
        c1 | c2       join (c1 ⊔ c2)
        c.inc(tid)    incυ(c)
        c.parallel(d) neither c ⊑ d nor d ⊑ c

    Instances compare equal iff they denote the same function ``Tid -> N``.
    """

    __slots__ = ("_entries", "_hash")

    def __init__(self, entries: Mapping[Tid, int] | Iterable[Tuple[Tid, int]] = ()):
        # collections.abc.Mapping, not typing.Mapping: this constructor is
        # on every detector hot path and typing's __instancecheck__ walk
        # shows up in profiles.
        if isinstance(entries, _Mapping):
            entries = entries.items()
        self._entries: Dict[Tid, int] = _normalized(entries)
        self._hash: int | None = None

    @staticmethod
    def _trusted(entries: Dict[Tid, int]) -> "VectorClock":
        """Wrap an already-normalized dict without copying or validating.

        Internal fast path for lattice operations whose results are
        normalized by construction (joins/increments of normalized
        clocks).  The caller must hand over ownership of ``entries``.
        """
        clock = VectorClock.__new__(VectorClock)
        clock._entries = entries
        clock._hash = None
        return clock

    # -- accessors ---------------------------------------------------------

    def __getitem__(self, tid: Tid) -> int:
        """The timestamp recorded for ``tid`` (0 if never observed)."""
        return self._entries.get(tid, 0)

    def threads(self) -> Iterator[Tid]:
        """Iterate over threads with a non-zero timestamp."""
        return iter(self._entries)

    def items(self) -> Iterator[Tuple[Tid, int]]:
        return iter(self._entries.items())

    def __len__(self) -> int:
        return len(self._entries)

    def is_bottom(self) -> bool:
        return not self._entries

    # -- lattice operations --------------------------------------------------

    def leq(self, other: "VectorClock | MutableVectorClock") -> bool:
        """Pointwise order ``self ⊑ other`` — the happens-before test."""
        for tid, stamp in self._entries.items():
            if stamp > other[tid]:
                return False
        return True

    __le__ = leq

    def __lt__(self, other: "VectorClock") -> bool:
        return self.leq(other) and not other.leq(self)

    def parallel(self, other: "VectorClock | MutableVectorClock") -> bool:
        """``self ‖ other``: the clocks are incomparable."""
        return not self.leq(other) and not other.leq(self)

    def join(self, other: "VectorClock | MutableVectorClock") -> "VectorClock":
        """The least upper bound ``self ⊔ other``."""
        merged = dict(self._entries)
        for tid, stamp in other.items():
            if stamp > merged.get(tid, 0):
                merged[tid] = stamp
        return VectorClock._trusted(merged)

    __or__ = join

    def inc(self, tid: Tid) -> "VectorClock":
        """``incυ``: a copy with ``tid``'s component advanced by one step."""
        bumped = dict(self._entries)
        bumped[tid] = bumped.get(tid, 0) + 1
        return VectorClock._trusted(bumped)

    # -- conversions ---------------------------------------------------------

    def thaw(self) -> "MutableVectorClock":
        """An independent mutable copy."""
        return MutableVectorClock(self._entries)

    def to_tuple(self, tids: Iterable[Tid]) -> Tuple[int, ...]:
        """Render as a dense tuple over a given thread ordering.

        Convenience for matching the paper's ``⟨3, 0, 1⟩`` presentation.
        """
        return tuple(self[tid] for tid in tids)

    # -- value semantics -------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, VectorClock):
            return self._entries == other._entries
        if isinstance(other, MutableVectorClock):
            return self._entries == other._entries
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._entries.items()))
        return self._hash

    def __reduce__(self):
        # Compact pickling for the sharded analyzer's IPC: ship only the
        # sparse entries (the cached hash is recomputed on demand).
        return (VectorClock, (self._entries,))

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid!r}: {ts}" for tid, ts in sorted(
            self._entries.items(), key=lambda kv: repr(kv[0])))
        return f"VectorClock({{{inner}}})"


BOTTOM = VectorClock()
"""The least vector clock ``⊥V`` (every component zero)."""


class MutableVectorClock:
    """In-place vector clock used by detector hot paths.

    Mirrors :class:`VectorClock`'s read API and adds destructive updates
    (:meth:`join_in_place`, :meth:`inc_in_place`).  Call :meth:`freeze` to
    snapshot the current value as an immutable clock — detectors do this when
    stamping events, so later in-place updates cannot corrupt past stamps.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Mapping[Tid, int] | Iterable[Tuple[Tid, int]] = ()):
        if isinstance(entries, _Mapping):
            entries = entries.items()
        self._entries: Dict[Tid, int] = _normalized(entries)

    def __getitem__(self, tid: Tid) -> int:
        return self._entries.get(tid, 0)

    def items(self) -> Iterator[Tuple[Tid, int]]:
        return iter(self._entries.items())

    def threads(self) -> Iterator[Tid]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def leq(self, other: "VectorClock | MutableVectorClock") -> bool:
        for tid, stamp in self._entries.items():
            if stamp > other[tid]:
                return False
        return True

    __le__ = leq

    def parallel(self, other: "VectorClock | MutableVectorClock") -> bool:
        return not self.leq(other) and not other.leq(self)

    def join_in_place(self, other: "VectorClock | MutableVectorClock") -> "MutableVectorClock":
        """``self ← self ⊔ other`` (returns self for chaining)."""
        mine = self._entries
        for tid, stamp in other.items():
            if stamp > mine.get(tid, 0):
                mine[tid] = stamp
        return self

    def inc_in_place(self, tid: Tid) -> "MutableVectorClock":
        """``self ← inc_tid(self)`` (returns self for chaining)."""
        self._entries[tid] = self._entries.get(tid, 0) + 1
        return self

    def set_component(self, tid: Tid, stamp: int) -> None:
        """Overwrite one component (used by FastTrack's read epochs)."""
        if stamp < 0:
            raise ValueError(f"negative timestamp {stamp} for thread {tid!r}")
        if stamp:
            self._entries[tid] = stamp
        else:
            self._entries.pop(tid, None)

    def freeze(self) -> VectorClock:
        """An immutable snapshot of the current value."""
        return VectorClock._trusted(dict(self._entries))

    def copy(self) -> "MutableVectorClock":
        dup = MutableVectorClock.__new__(MutableVectorClock)
        dup._entries = dict(self._entries)
        return dup

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (VectorClock, MutableVectorClock)):
            return dict(self.items()) == dict(other.items())
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable: not hashable

    def __reduce__(self):
        return (MutableVectorClock, (self._entries,))

    def __repr__(self) -> str:
        inner = ", ".join(f"{tid!r}: {ts}" for tid, ts in sorted(
            self._entries.items(), key=lambda kv: repr(kv[0])))
        return f"MutableVectorClock({{{inner}}})"
